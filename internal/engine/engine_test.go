package engine

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
)

// TestSelectStreamParity is the streaming acceptance criterion: the rounds
// emitted by SelectStream, concatenated, must reassemble bit-identically
// into the blocking Select result — for both problems, lazy and plain,
// across worker counts — and the running objective must telescope exactly.
func TestSelectStreamParity(t *testing.T) {
	g := testGraph(t, 500, 11)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	for _, problem := range []Problem{Problem1, Problem2} {
		for _, strategy := range []Strategy{Lazy, Plain} {
			for _, workers := range []int{1, 2, 4} {
				req := SelectRequest{
					Graph:    "test",
					Problem:  problem,
					K:        8,
					L:        5,
					R:        25,
					Seed:     9,
					Strategy: strategy,
					Workers:  workers,
				}
				want, err := e.Select(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				var rounds []Round
				got, err := e.SelectStream(context.Background(), req, func(rd Round) error {
					rounds = append(rounds, rd)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				label := func() string {
					return problem.String() + "/" + strategy.String()
				}
				if len(rounds) != len(want.Nodes) || len(got.Nodes) != len(want.Nodes) {
					t.Fatalf("%s workers=%d: %d rounds, %d streamed nodes, want %d",
						label(), workers, len(rounds), len(got.Nodes), len(want.Nodes))
				}
				total := 0.0
				for i, rd := range rounds {
					if rd.Round != i+1 {
						t.Fatalf("%s: round %d numbered %d", label(), i+1, rd.Round)
					}
					if rd.Node != want.Nodes[i] || got.Nodes[i] != want.Nodes[i] {
						t.Fatalf("%s workers=%d: round %d node %d (result %d), want %d",
							label(), workers, i+1, rd.Node, got.Nodes[i], want.Nodes[i])
					}
					if math.Float64bits(rd.Gain) != math.Float64bits(want.Gains[i]) {
						t.Fatalf("%s workers=%d: round %d gain %v, want %v", label(), workers, i+1, rd.Gain, want.Gains[i])
					}
					total += rd.Gain
					if math.Float64bits(rd.Objective) != math.Float64bits(total) {
						t.Fatalf("%s: round %d objective %v, want running total %v", label(), i+1, rd.Objective, total)
					}
				}
				if math.Float64bits(rounds[len(rounds)-1].Objective) != math.Float64bits(want.Objective()) {
					t.Fatalf("%s: final streamed objective %v, want %v",
						label(), rounds[len(rounds)-1].Objective, want.Objective())
				}
				if got.Evaluations != want.Evaluations {
					t.Fatalf("%s: streamed evaluations %d, want %d", label(), got.Evaluations, want.Evaluations)
				}
			}
		}
	}
}

// A non-nil emit error must abort the stream and surface as-is.
func TestSelectStreamEmitErrorAborts(t *testing.T) {
	e := newTestEngine(t, Config{})
	boom := errors.New("client went away")
	calls := 0
	_, err := e.SelectStream(context.Background(), SelectRequest{Graph: "test", K: 5, L: 4, R: 20}, func(Round) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("stream error = %v, want %v", err, boom)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times after abort, want 2", calls)
	}
}

// TestErrorCodes pins the stable machine-readable code for each failure
// class — the contract every transport codec maps mechanically.
func TestErrorCodes(t *testing.T) {
	e := newTestEngine(t, Config{})
	ctx := context.Background()

	if _, err := e.Select(ctx, SelectRequest{Graph: "nope", K: 3, L: 4}); CodeOf(err) != CodeNotFound {
		t.Fatalf("unknown graph: code %q, want %q (err %v)", CodeOf(err), CodeNotFound, err)
	}
	if _, err := e.Select(ctx, SelectRequest{Graph: "test", K: -1, L: 4}); CodeOf(err) != CodeBadRequest {
		t.Fatalf("k=-1: code %q, want %q", CodeOf(err), CodeBadRequest)
	}
	if _, err := e.Select(ctx, SelectRequest{Graph: "test", K: 3, L: -1}); CodeOf(err) != CodeBadRequest {
		t.Fatalf("L=-1: code %q, want %q", CodeOf(err), CodeBadRequest)
	}
	// The engine's domain is wider than the HTTP contract's: K = 0 is the
	// degenerate empty selection, not an error.
	if res, err := e.Select(ctx, SelectRequest{Graph: "test", K: 0, L: 4, R: 10}); err != nil || len(res.Nodes) != 0 {
		t.Fatalf("k=0: res %v err %v, want empty selection", res, err)
	}
	if _, err := e.Gain(ctx, GainRequest{Graph: "test", L: 4, Set: []int{999999}, Nodes: []int{1}}); CodeOf(err) != CodeBadRequest {
		t.Fatalf("out-of-range set: code %q, want %q", CodeOf(err), CodeBadRequest)
	}
	if _, err := e.Gain(ctx, GainRequest{Graph: "test", L: 4}); CodeOf(err) != CodeBadRequest {
		t.Fatalf("missing nodes: code %q, want %q", CodeOf(err), CodeBadRequest)
	}
	if _, err := e.TopGains(ctx, TopGainsRequest{Graph: "test", L: 4, B: -1}); CodeOf(err) != CodeBadRequest {
		t.Fatalf("b=-1: code %q, want %q", CodeOf(err), CodeBadRequest)
	}

	// A cold index with a 1ms budget: the build detaches and the caller gets
	// a timeout-coded error.
	if _, err := e.Select(ctx, SelectRequest{Graph: "test", K: 3, L: 6, R: 100, Seed: 77, Timeout: time.Millisecond}); CodeOf(err) != CodeTimeout {
		t.Fatalf("timeout: code %q, want %q", CodeOf(err), CodeTimeout)
	}

	// Aborted engine (drain/hard-stop): computations die with the draining
	// code.
	e2 := newTestEngine(t, Config{})
	e2.Abort()
	if _, err := e2.Select(ctx, SelectRequest{Graph: "test", K: 3, L: 4, R: 20}); CodeOf(err) != CodeDraining {
		t.Fatalf("aborted engine: code %q, want %q", CodeOf(err), CodeDraining)
	}
}

// The per-entry top-B result memo: a repeated same-set TopGains request is
// served from the stored winners — identical payload, TopHits counter
// bumped — and distinct budgets are cached independently.
func TestTopGainsResultMemo(t *testing.T) {
	e := newTestEngine(t, Config{})
	ctx := context.Background()
	req := TopGainsRequest{Graph: "test", L: 4, R: 20, Seed: 3, Set: []int{1, 2}, B: 5}

	first, err := e.TopGains(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ms := e.MemoStats(); ms.TopHits != 0 {
		t.Fatalf("TopHits after first sweep = %d, want 0", ms.TopHits)
	}
	second, err := e.TopGains(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ms := e.MemoStats(); ms.TopHits != 1 {
		t.Fatalf("TopHits after repeat = %d, want 1", ms.TopHits)
	}
	if len(second.Nodes) != len(first.Nodes) {
		t.Fatalf("repeat returned %d nodes, want %d", len(second.Nodes), len(first.Nodes))
	}
	for i := range first.Nodes {
		if second.Nodes[i] != first.Nodes[i] ||
			math.Float64bits(second.Gains[i]) != math.Float64bits(first.Gains[i]) {
			t.Fatalf("memoized top gains diverge at %d: %v vs %v", i, second, first)
		}
	}

	// A different budget is its own sweep (and its own memo slot): the
	// bigger result must extend the smaller one.
	reqB8 := req
	reqB8.B = 8
	third, err := e.TopGains(ctx, reqB8)
	if err != nil {
		t.Fatal(err)
	}
	if ms := e.MemoStats(); ms.TopHits != 1 {
		t.Fatalf("TopHits after new budget = %d, want 1 (fresh sweep)", ms.TopHits)
	}
	if len(third.Nodes) != 8 {
		t.Fatalf("b=8 returned %d nodes", len(third.Nodes))
	}
	for i := range first.Nodes {
		if third.Nodes[i] != first.Nodes[i] {
			t.Fatalf("b=8 prefix diverges from b=5 winners: %v vs %v", third.Nodes, first.Nodes)
		}
	}
	if _, err := e.TopGains(ctx, reqB8); err != nil {
		t.Fatal(err)
	}
	if ms := e.MemoStats(); ms.TopHits != 2 {
		t.Fatalf("TopHits after b=8 repeat = %d, want 2", ms.TopHits)
	}
}

// AdoptIndex must make a caller-materialized index servable: the selection
// is a cache hit and matches the direct core computation bit-for-bit.
func TestAdoptIndex(t *testing.T) {
	g := testGraph(t, 400, 4)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"g": g}})
	ix, err := index.BuildWorkers(g, 4, 30, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AdoptIndex("g", ix); err != nil {
		t.Fatal(err)
	}
	res, err := e.Select(context.Background(), SelectRequest{Graph: "g", K: 6, L: 4, R: 30, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexCached {
		t.Fatal("selection rebuilt an index that was adopted")
	}
	want, err := core.ApproxWithIndexWorkers(ix, index.Problem2, 6, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Nodes {
		if res.Nodes[i] != want.Nodes[i] {
			t.Fatalf("adopted selection %v, want %v", res.Nodes, want.Nodes)
		}
	}
	// Adoption is idempotent and checks identity.
	if err := e.AdoptIndex("g", ix); err != nil {
		t.Fatal(err)
	}
	other := testGraph(t, 100, 9)
	otherIx, err := index.BuildWorkers(other, 4, 30, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AdoptIndex("g", otherIx); CodeOf(err) != CodeBadRequest {
		t.Fatalf("foreign-graph adopt: code %q, want %q", CodeOf(err), CodeBadRequest)
	}
}

// The sole-graph shorthand: an empty graph name resolves to the engine's
// only graph and shares its cache key with explicit requests.
func TestSoleGraphShorthand(t *testing.T) {
	e := newTestEngine(t, Config{})
	ctx := context.Background()
	a, err := e.Select(ctx, SelectRequest{K: 4, L: 4, R: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Select(ctx, SelectRequest{Graph: "test", K: 4, L: 4, R: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !b.IndexCached {
		t.Fatal("explicit name missed the index the shorthand request built")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("shorthand %v != explicit %v", a.Nodes, b.Nodes)
		}
	}
}
