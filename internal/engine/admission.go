package engine

import (
	"context"
	"sync"
	"time"
)

// This file implements admission control for heavy work: selection runs and
// walk-index builds. The engine previously accepted unbounded concurrent
// computations — every request got a goroutine and they all fought for the
// same cores, so under overload everything got slower together until
// timeouts killed work that had already burned its CPU. The gate inverts
// that: a fixed number of computation slots, a small bounded wait queue, and
// immediate load-shedding (a typed CodeOverloaded error carrying a
// Retry-After hint) for everything beyond both — requests fail fast and
// cheap instead of slow and expensive, which is what lets a saturated
// daemon keep answering health checks and cheap memoized reads.
//
// What is gated: the selection computation itself (one slot held for the
// whole greedy run, acquired by the singleflight leader only — coalesced
// followers ride the leader's slot) and index builds triggered by cache
// misses (a build inside an already-admitted selection reuses the
// selection's slot via the context marker instead of deadlocking on a
// second one). What is not gated: memoized reads, empty-set reads, stats —
// their cost is microseconds, and shedding them under overload would throw
// away exactly the traffic the daemon can still serve.
//
// Shedding is deadline-aware: a request whose context is already dead is
// shed without queueing, and one whose deadline expires while queued is shed
// at that moment — it could not have been admitted before its deadline, so
// it is overload, not a timeout, and clients should back off rather than
// retry at the same pace.

// admissionDefaultRetryAfter is the Retry-After hint attached to shed
// requests when the config does not override it.
const admissionDefaultRetryAfter = time.Second

// gate is the admission gate. The zero value is unusable; build with
// newGate. A nil *gate (admission disabled) admits everything.
type gate struct {
	sem        chan struct{} // buffered; a held token = a running computation
	maxQueue   int
	retryAfter time.Duration

	mu          sync.Mutex
	queued      int   // current waiters
	admitted    int64 // total admissions
	shed        int64 // total rejections
	queueWaits  int64 // admissions that had to queue first
	queueWaitNS int64 // cumulative queue time of those admissions
}

// AdmissionStats snapshots the gate counters for /stats and tests.
type AdmissionStats struct {
	// Enabled reports whether admission control is active at all.
	Enabled bool
	// MaxConcurrent is the slot count; MaxQueue the wait-queue bound.
	MaxConcurrent int
	MaxQueue      int
	// Admitted counts admissions granted; Shed counts rejections (queue
	// full, context dead on arrival, or deadline expired while queued) —
	// every CodeOverloaded error corresponds to exactly one Shed tick.
	Admitted int64
	Shed     int64
	// InFlight is the number of slots currently held; QueueDepth the number
	// of requests currently waiting for one.
	InFlight   int
	QueueDepth int
	// QueueWaits counts admissions that had to wait; QueueWaitNS their
	// cumulative wait (ns), so QueueWaitNS/QueueWaits is the mean queue
	// latency of delayed-but-served requests.
	QueueWaits  int64
	QueueWaitNS int64
}

// newGate builds a gate with maxConcurrent slots and a maxQueue-deep wait
// queue. Both must be >= 1 and >= 0 respectively (Config.withDefaults
// resolves the knobs before this runs).
func newGate(maxConcurrent, maxQueue int, retryAfter time.Duration) *gate {
	if retryAfter <= 0 {
		retryAfter = admissionDefaultRetryAfter
	}
	return &gate{
		sem:        make(chan struct{}, maxConcurrent),
		maxQueue:   maxQueue,
		retryAfter: retryAfter,
	}
}

// overloaded builds the typed shed error, counting the shed.
func (g *gate) overloaded(msg string) error {
	g.mu.Lock()
	g.shed++
	g.mu.Unlock()
	return &Error{Code: CodeOverloaded, Message: msg, RetryAfter: g.retryAfter}
}

// admit acquires one computation slot, waiting in the bounded queue when
// none is free. It returns a release function exactly when err is nil; the
// caller must invoke it once the heavy work is done. A nil gate admits
// immediately (admission disabled).
func (g *gate) admit(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	// Fast path: a free slot means no queueing and no shed bookkeeping.
	select {
	case g.sem <- struct{}{}:
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return g.release, nil
	default:
	}
	// Dead on arrival: a request whose deadline has already passed can never
	// be admitted before it — shed without occupying a queue position.
	if ctx.Err() != nil {
		return nil, g.overloaded("overloaded: request deadline expired before admission")
	}
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return nil, g.overloaded("overloaded: admission queue is full")
	}
	g.queued++
	g.mu.Unlock()
	start := time.Now()
	select {
	case g.sem <- struct{}{}:
		wait := time.Since(start)
		g.mu.Lock()
		g.queued--
		g.admitted++
		g.queueWaits++
		g.queueWaitNS += int64(wait)
		g.mu.Unlock()
		return g.release, nil
	case <-ctx.Done():
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
		return nil, g.overloaded("overloaded: request deadline expired while queued for admission")
	}
}

// release frees one slot.
func (g *gate) release() { <-g.sem }

// stats snapshots the counters. Safe on a nil gate (admission disabled).
func (g *gate) stats() AdmissionStats {
	if g == nil {
		return AdmissionStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return AdmissionStats{
		Enabled:       true,
		MaxConcurrent: cap(g.sem),
		MaxQueue:      g.maxQueue,
		Admitted:      g.admitted,
		Shed:          g.shed,
		InFlight:      len(g.sem),
		QueueDepth:    g.queued,
		QueueWaits:    g.queueWaits,
		QueueWaitNS:   g.queueWaitNS,
	}
}

// admittedKey marks a context as already holding an admission slot, so
// nested heavy work (the index build inside an admitted selection) rides the
// outer slot instead of deadlocking on a second acquire.
type admittedKey struct{}

// markAdmitted returns ctx tagged as holding a slot.
func markAdmitted(ctx context.Context) context.Context {
	return context.WithValue(ctx, admittedKey{}, true)
}

// isAdmitted reports whether ctx already holds a slot.
func isAdmitted(ctx context.Context) bool {
	v, _ := ctx.Value(admittedKey{}).(bool)
	return v
}
