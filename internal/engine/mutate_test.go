package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// firstEdge returns the first edge of g's iteration order.
func firstEdge(t *testing.T, g *graph.Graph) graph.Edge {
	t.Helper()
	var e graph.Edge
	found := false
	g.Edges(func(u, v int, w float64) bool {
		e, found = graph.Edge{U: u, V: v}, true
		return false
	})
	if !found {
		t.Fatal("graph has no edges")
	}
	return e
}

func TestApplyDeltaConflicts(t *testing.T) {
	g := testGraph(t, 200, 9)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	edge := firstEdge(t, g)

	cases := []struct {
		name string
		req  ApplyDeltaRequest
		code Code
	}{
		{"empty delta", ApplyDeltaRequest{Graph: "test"}, CodeBadRequest},
		{"unknown graph", ApplyDeltaRequest{Graph: "nope", Delta: graph.Delta{RemoveEdges: []graph.Edge{edge}}}, CodeNotFound},
		{"add existing", ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{AddEdges: []graph.Edge{edge}}}, CodeConflict},
		{"remove missing", ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: []graph.Edge{{U: 0, V: 199}}}}, CodeConflict},
		{"node out of range", ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{AddEdges: []graph.Edge{{U: 0, V: 5000}}}}, CodeBadRequest},
		{"stale base epoch", ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: []graph.Edge{edge}}, BaseEpoch: ptrU64(7)}, CodeConflict},
	}
	for _, tc := range cases {
		_, err := e.ApplyDelta(context.Background(), tc.req)
		if CodeOf(err) != tc.code {
			t.Errorf("%s: code = %v (err %v), want %v", tc.name, CodeOf(err), err, tc.code)
		}
	}
	if g2, _ := e.Graph("test"); g2 != g || g2.Epoch() != 0 {
		t.Fatal("failed mutations must leave the graph untouched")
	}

	// The happy path, conditional on the correct base epoch.
	res, err := e.ApplyDelta(context.Background(), ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: []graph.Edge{edge}}, BaseEpoch: ptrU64(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Touched != 2 {
		t.Fatalf("result = %+v, want epoch 1 touching 2 nodes", res)
	}
	if g2, _ := e.Graph("test"); g2.Epoch() != 1 || g2.M() != g.M()-1 {
		t.Fatalf("post-mutation graph: epoch %d, m %d; want 1, %d", g2.Epoch(), g2.M(), g.M()-1)
	}
}

func ptrU64(v uint64) *uint64 { return &v }

// TestApplyDeltaRepairsResidentIndex is the warm-path tentpole check: a
// mutation on an engine with a resident walk index repairs it in place and
// re-keys it at the new epoch, so the next request is a cache hit — and its
// answers are bit-identical to a cold engine over the same mutated graph.
func TestApplyDeltaRepairsResidentIndex(t *testing.T) {
	g := testGraph(t, 300, 6)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	req := SelectRequest{Graph: "test", K: 5, L: 4, R: 20, Seed: 3}
	if _, err := e.Select(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	edge := firstEdge(t, g)
	res, err := e.ApplyDelta(context.Background(), ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: []graph.Edge{edge}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexesRepaired != 1 || res.IndexesDropped != 0 {
		t.Fatalf("repaired %d, dropped %d; want 1 repaired", res.IndexesRepaired, res.IndexesDropped)
	}

	got, err := e.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IndexCached {
		t.Fatal("post-mutation select rebuilt the index despite a successful repair")
	}

	ng, _ := e.Graph("test")
	fresh := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": ng}})
	want, err := fresh.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Gains, want.Gains) || got.Evaluations != want.Evaluations {
		t.Fatalf("repaired-index selection diverges from rebuild:\n got %v %v (%d evals)\nwant %v %v (%d evals)",
			got.Nodes, got.Gains, got.Evaluations, want.Nodes, want.Gains, want.Evaluations)
	}
}

// TestApplyDeltaDropsPinnedIndex: an index pinned by an in-flight request at
// mutation time cannot be repaired in place (the reader is concurrently
// scanning its rows), so it is orphaned — the reader finishes on a
// consistent pre-mutation answer — and the next post-mutation request
// rebuilds.
func TestApplyDeltaDropsPinnedIndex(t *testing.T) {
	g := testGraph(t, 300, 6)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	key := index.CacheKey{Graph: "test", L: 4, R: 10, Seed: 1}
	h, err := e.cache.Acquire(key, g, func() (*index.Index, error) {
		return index.BuildWorkers(g, key.L, key.R, key.Seed, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs, wantHops := h.Index().Row(5, 0) // any row read; pins the pre-mutation walks

	res, err := e.ApplyDelta(context.Background(), ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: []graph.Edge{firstEdge(t, g)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexesRepaired != 0 || res.IndexesDropped != 1 {
		t.Fatalf("repaired %d, dropped %d; want the pinned index dropped", res.IndexesRepaired, res.IndexesDropped)
	}
	// The held handle still reads the untouched pre-mutation index.
	gotIDs, gotHops := h.Index().Row(5, 0)
	if !reflect.DeepEqual(gotIDs, wantIDs) || !reflect.DeepEqual(gotHops, wantHops) {
		t.Fatal("pinned index mutated under its reader")
	}
	if h.Index().GraphEpoch() != 0 {
		t.Fatal("pinned index must stay at its pre-mutation epoch")
	}
	h.Release()
}

// TestApplyDeltaInvalidatesMemo is the PR's satellite-2 regression: before
// the graph epoch became part of the index identity end-to-end, a memoized
// D-table built pre-mutation kept serving Gain after the mutation — the
// memo key (index key, problem, set) was unchanged, so the read path never
// noticed the graph moved. Now the epoch rides in the index cache key and
// therefore the memo key: the stale table is invalidated at mutation time
// and the post-mutation answer matches a cold engine exactly.
func TestApplyDeltaInvalidatesMemo(t *testing.T) {
	g := testGraph(t, 300, 6)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	edge := firstEdge(t, g)
	req := GainRequest{Graph: "test", L: 4, R: 20, Seed: 3, Set: []int{1, 2}, Nodes: []int{edge.U, edge.V}}

	stale, err := e.Gain(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Memo != MemoMiss {
		t.Fatalf("first gain memo = %q, want %q", stale.Memo, MemoMiss)
	}

	res, err := e.ApplyDelta(context.Background(), ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: []graph.Edge{edge}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemosDropped != 1 {
		t.Fatalf("MemosDropped = %d, want 1", res.MemosDropped)
	}
	if inv := e.MemoStats().Invalidated; inv != 1 {
		t.Fatalf("MemoStats.Invalidated = %d, want 1", inv)
	}

	got, err := e.Gain(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Memo != MemoMiss {
		t.Fatalf("post-mutation gain memo = %q, want %q (stale table must be gone)", got.Memo, MemoMiss)
	}
	ng, _ := e.Graph("test")
	fresh := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": ng}})
	want, err := fresh.Gain(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Gains, want.Gains) {
		t.Fatalf("post-mutation gains %v, want %v", got.Gains, want.Gains)
	}
	if reflect.DeepEqual(stale.Gains, want.Gains) {
		t.Fatal("test premise: removing an incident edge must change the queried gains")
	}
}

// TestPartialEpochPin: a shard scatter pinned to an epoch the worker's graph
// is not at — behind it or ahead of it — answers a typed retryable
// stale-epoch error rather than contributing cross-epoch sums to a merge.
func TestPartialEpochPin(t *testing.T) {
	g := testGraph(t, 200, 9)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	req := PartialGainRequest{Graph: "test", L: 4, Seed: 3, R0: 0, R1: 10, Nodes: []int{1}}

	req.Epoch = ptrU64(0)
	if _, err := e.PartialGain(context.Background(), req); err != nil {
		t.Fatalf("matching epoch pin: %v", err)
	}
	req.Epoch = ptrU64(3)
	_, err := e.PartialGain(context.Background(), req)
	if CodeOf(err) != CodeStaleEpoch {
		t.Fatalf("future epoch pin: code = %v (err %v), want %v", CodeOf(err), err, CodeStaleEpoch)
	}

	if _, err := e.ApplyDelta(context.Background(), ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: []graph.Edge{firstEdge(t, g)}}}); err != nil {
		t.Fatal(err)
	}
	req.Epoch = ptrU64(0)
	_, err = e.PartialGain(context.Background(), req)
	if CodeOf(err) != CodeStaleEpoch {
		t.Fatalf("pre-mutation epoch pin: code = %v (err %v), want %v", CodeOf(err), err, CodeStaleEpoch)
	}
	var ee *Error
	if !errors.As(err, &ee) || ee.Code != CodeStaleEpoch {
		t.Fatalf("stale-epoch error is not typed: %v", err)
	}
	req.Epoch = ptrU64(1)
	if _, err := e.PartialGain(context.Background(), req); err != nil {
		t.Fatalf("post-mutation epoch pin: %v", err)
	}
}

// TestApplyDeltaSelectParity is the engine half of the PR's parity suite: a
// warm engine carried through a delta sequence by incremental repair must
// answer every read — both problems, both greedy drivers, multiple worker
// counts — bit-identically to a cold engine built over the equivalently
// mutated graph. (The shard half, N ∈ {1, 2, 4}, lives in internal/shard.)
func TestApplyDeltaSelectParity(t *testing.T) {
	g := testGraph(t, 300, 6)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})

	// Warm the index, then mutate through a small sequence: remove two
	// spread edges, re-add one, append an isolated node and wire it in.
	if _, err := e.Select(context.Background(), SelectRequest{Graph: "test", K: 3, L: 4, R: 20, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	i := 0
	g.Edges(func(u, v int, w float64) bool {
		if i%37 == 0 && len(edges) < 2 {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
		i++
		return len(edges) < 2
	})
	deltas := []graph.Delta{
		{RemoveEdges: edges},
		{AddEdges: edges[:1]},
		{AddNodes: 1, AddEdges: []graph.Edge{{U: 300, V: 7}, {U: 300, V: 42}}},
	}
	ref := g // referee lineage: same deltas, no engine
	for _, d := range deltas {
		if _, err := e.ApplyDelta(context.Background(), ApplyDeltaRequest{Graph: "test", Delta: d}); err != nil {
			t.Fatal(err)
		}
		ng, _, err := ref.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		ref = ng
	}
	fresh := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": ref}})

	for _, prob := range []Problem{Problem1, Problem2} {
		for _, strat := range []Strategy{Lazy, Plain} {
			for _, workers := range []int{1, 3} {
				name := fmt.Sprintf("p%d/%s/w=%d", int(prob), strat, workers)
				req := SelectRequest{Graph: "test", Problem: prob, K: 6, L: 4, R: 20, Seed: 3, Strategy: strat, Workers: workers}
				got, err := e.Select(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: warm select: %v", name, err)
				}
				want, err := fresh.Select(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: cold select: %v", name, err)
				}
				if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Gains, want.Gains) || got.Evaluations != want.Evaluations {
					t.Errorf("%s: repaired engine diverges from rebuild:\n got %v %v (%d evals)\nwant %v %v (%d evals)",
						name, got.Nodes, got.Gains, got.Evaluations, want.Nodes, want.Gains, want.Evaluations)
				}
			}
		}
	}
}
