package engine

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/index"
)

// This file implements the memoized gain read path: a refcounted LRU cache
// of D-tables keyed by (index identity, problem, canonical seed set). The
// paper's whole point is that the walk index makes marginal-gain evaluation
// cheap — the index is built once and every gain is a read — yet the naive
// serving path re-materialized an n·R table and replayed the whole set on
// every /v1/gain and /v1/objective request. With the memo, the first request
// for a set pays one table materialization (extending the longest cached
// prefix of the set when one is resident, so only the delta is replayed) and
// every later request is a pure read of the frozen table.
//
// Frozen means exactly that: once an entry is published (its ready channel
// closed), its table is never mutated again. Gain/GainBatch/TopGains are
// pure reads, so any number of requests can share the table concurrently;
// the objective — whose D-table scan memoizes saturation state and is
// therefore NOT a pure read — is computed once during population and stored
// as a plain float64. Entries are only evicted when unreferenced, so a
// table can never be freed under an in-flight request.
//
// The refs/ready/LRU machinery lives in the generic internal/cache core
// (shared with internal/index.Cache); this file adds the memo-specific
// policy: canonical-set keying, longest-prefix pinning and extension, the
// stored objective, and index-eviction linkage — when the index cache
// evicts an index, dropIndex removes every table built under that key so
// the evicted index's heap is actually released instead of staying pinned
// by its dependent tables (tables still mid-read are orphaned and released
// with their last handle).

// canonicalSet returns the sorted, duplicate-free form of nodes together
// with its canonical key string. Two node lists denote the same seed set —
// and therefore the same D-table — iff their canonical keys are equal:
// D-table state is order-independent (Update min-folds hop values for
// Problem 1 and writes indicators for Problem 2, both commutative) and
// duplicate-insensitive (Update is idempotent on table state).
func canonicalSet(nodes []int) ([]int, string) {
	canon := append([]int(nil), nodes...)
	sort.Ints(canon)
	w := 0
	for i, u := range canon {
		if i > 0 && u == canon[w-1] {
			continue
		}
		canon[w] = u
		w++
	}
	canon = canon[:w]
	return canon, setKeyOf(canon)
}

// setKeyOf renders a canonical (sorted, deduplicated) set as its exact key:
// decimal ids joined by commas. On canonical input the encoding is
// injective — distinct sets always get distinct keys — so a key match can
// never serve the wrong table (no hashing, no collisions to reason about).
func setKeyOf(set []int) string {
	if len(set) == 0 {
		return ""
	}
	var b strings.Builder
	for i, u := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(u))
	}
	return b.String()
}

// isPrefix reports whether p is a proper leading prefix of set (both
// canonical, so element-wise comparison suffices).
func isPrefix(p, set []int) bool {
	if len(p) >= len(set) {
		return false
	}
	for i, u := range p {
		if set[i] != u {
			return false
		}
	}
	return true
}

// memoKey identifies one cached D-table.
type memoKey struct {
	idx     index.CacheKey
	problem index.Problem
	set     string // canonical set key (setKeyOf)
}

// memoValue is one cached table: written once at population and immutable
// afterwards, except for the attached top-B result memo, which has its own
// lock.
type memoValue struct {
	set       []int         // canonical set, for prefix extension
	d         *index.DTable // frozen after publication
	objective float64
	top       *topMemo // per-entry top-B winners, lazily filled
}

// topMemo caches TopGains results per budget B for one frozen table. The
// table never changes after publication, so a stored result is valid for
// the entry's whole lifetime; the map is bounded (topMemoMaxBudgets) so an
// adversary sweeping B values cannot grow it without bound. Eviction of the
// entry drops the memo with it.
type topMemo struct {
	mu  sync.Mutex
	byB map[int]topResult
}

type topResult struct {
	nodes []int
	gains []float64
}

// topMemoMaxBudgets bounds how many distinct B values one table caches.
const topMemoMaxBudgets = 16

// get returns a copy of the cached winners for budget b, if present.
// Copying at the memo boundary (both directions — see put) keeps callers
// free to mutate their results without corrupting every later answer.
func (t *topMemo) get(b int) ([]int, []float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.byB[b]
	if !ok {
		return nil, nil, false
	}
	return append([]int(nil), r.nodes...), append([]float64(nil), r.gains...), true
}

// put stores a copy of the winners for budget b, unless the budget cap is
// reached (concurrent computes of the same b store identical results, so
// last-write is harmless).
func (t *topMemo) put(b int, nodes []int, gains []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byB == nil {
		t.byB = make(map[int]topResult, 4)
	}
	if _, ok := t.byB[b]; !ok && len(t.byB) >= topMemoMaxBudgets {
		return
	}
	t.byB[b] = topResult{
		nodes: append([]int(nil), nodes...),
		gains: append([]float64(nil), gains...),
	}
}

// memoHandle pins one cached table. Callers must Release exactly once;
// Release after the first is a no-op.
type memoHandle struct {
	h *cache.Handle[memoKey, memoValue]
}

// Table returns the pinned frozen table. Callers may read gains from it
// (Gain/GainBatch/TopGains) but must not mutate it.
func (h *memoHandle) Table() *index.DTable { return h.h.Value().d }

// Objective returns the set's estimated objective, computed once at
// population time.
func (h *memoHandle) Objective() float64 { return h.h.Value().objective }

// CachedTop returns the memoized top-B winners for this table, if a prior
// request already paid the candidate sweep for budget b.
func (h *memoHandle) CachedTop(b int) ([]int, []float64, bool) {
	return h.h.Value().top.get(b)
}

// StoreTop memoizes the top-B winners so repeated same-set topgains
// requests become O(B) reads instead of O(n) sweeps.
func (h *memoHandle) StoreTop(b int, nodes []int, gains []float64) {
	h.h.Value().top.put(b, nodes, gains)
}

// Release unpins the table, making its entry eligible for eviction.
func (h *memoHandle) Release() { h.h.Release() }

// MemoStats counts memo-cache traffic. Hits + Misses equals the number of
// non-empty-set memoized lookups minus waiters that coalesced onto a failed
// population (a failed population is counted as a miss plus a populate
// error; its waiters as populate errors only). EmptyHits counts set-free
// requests served straight off the index's memoized empty-set vectors (no
// table at all).
type MemoStats struct {
	// Hits counts acquires served by a resident table; Coalesced the subset
	// that attached to a population already in flight.
	Hits      int64
	Coalesced int64
	// Misses counts acquires that populated a new table; PrefixExtended the
	// subset that extended the longest cached prefix of the requested set
	// instead of replaying it from scratch.
	Misses         int64
	PrefixExtended int64
	// EmptyHits counts empty-set requests answered from the index's
	// memoized empty-set gain vector / objective, with no D-table involved.
	EmptyHits int64
	// TopHits counts TopGains requests served from a table's per-entry
	// top-B result memo (an O(B) read instead of an O(n) candidate sweep).
	TopHits int64
	// Evictions counts entries dropped by the entry/bytes budgets;
	// Invalidated counts tables dropped because the index they were built
	// from was evicted from the index cache; PopulateErrors counts failed
	// populations and the waiters that coalesced onto them (which hold no
	// entry and are not hits).
	Evictions      int64
	Invalidated    int64
	PopulateErrors int64
	// Resident is the number of cached tables at snapshot time;
	// ResidentBytes the sum of their heap footprints.
	Resident      int
	ResidentBytes int64
}

// memoCache is the refcounted LRU of frozen D-tables. Like index.Cache it
// coalesces concurrent populations of the same key and never evicts a
// referenced entry; unlike it there is no spill — a lost table costs one
// replay against a resident index, not a walk rematerialization.
type memoCache struct {
	core *cache.Cache[memoKey, memoValue]

	mu             sync.Mutex
	prefixExtended int64
	emptyHits      int64
	topHits        int64
}

// newMemoCache returns a memo cache bounded by maxEntries tables (<= 0
// means unbounded) and maxBytes of table heap (<= 0 means unbounded).
func newMemoCache(maxEntries int, maxBytes int64) *memoCache {
	return &memoCache{core: cache.New(cache.Config[memoKey, memoValue]{
		MaxEntries: maxEntries,
		MaxBytes:   maxBytes,
	})}
}

// Memo acquire outcomes, echoed through every transport (the HTTP "memo"
// response field, the client SDK, the result types below) so clients and
// the parity/stress tests can see which path served them. Untyped string
// constants so codecs compare them against plain string fields.
const (
	MemoHit      = "hit"      // resident frozen table
	MemoMiss     = "miss"     // populated by full replay
	MemoExtended = "extended" // populated by extending a cached prefix
	MemoEmpty    = "empty"    // empty set, served off the index itself
	MemoOff      = "off"      // memoization disabled, fresh-table path
)

// acquire returns a pinned handle on the table for (key, set), populating
// it at most once across concurrent callers. ix is the resident index to
// materialize from on a miss; set must be canonical and non-empty. The
// returned status is MemoHit, MemoMiss or MemoExtended.
func (c *memoCache) acquire(key memoKey, set []int, ix *index.Index) (*memoHandle, string, error) {
	populated, extended := false, false
	h, err := c.core.Acquire(key, func() (memoValue, int64, error) {
		populated = true
		if err := faultinject.Do(faultinject.SiteMemoPopulate); err != nil {
			return memoValue{}, 0, err
		}
		// Pin the longest ready proper prefix of set (if any) so eviction
		// cannot free it while we extend from its snapshot. The scan is
		// O(resident·|set|), bounded by the cache size — probing the map for
		// every prefix key would cost O(|set|²) string building per miss,
		// which an attacker-sized set turns into a DoS.
		prefix := c.core.PinBest(func(k memoKey, v memoValue) int {
			if k.idx != key.idx || k.problem != key.problem {
				return 0
			}
			if !isPrefix(v.set, set) {
				return 0
			}
			return len(v.set) // longest prefix wins; always >= 1 (only non-empty sets are cached)
		})
		var prefixD *index.DTable
		prefixLen := 0
		if prefix != nil {
			defer prefix.Release()
			prefixD, prefixLen = prefix.Value().d, len(prefix.Value().set)
			extended = true
		}
		d, objective, err := populateTable(ix, key.problem, set, prefixD, prefixLen)
		if err != nil {
			return memoValue{}, 0, err
		}
		return memoValue{set: set, d: d, objective: objective, top: &topMemo{}}, d.MemoryBytes(), nil
	})
	if err != nil {
		return nil, "", err
	}
	status := MemoHit
	if populated {
		status = MemoMiss
		if extended {
			status = MemoExtended
			c.mu.Lock()
			c.prefixExtended++
			c.mu.Unlock()
		}
	}
	return &memoHandle{h: h}, status, nil
}

// populateTable materializes the frozen table for set: from the longest
// cached prefix when one is pinned (one array copy plus a replay of only
// the delta of set past prefixLen), otherwise by full replay. The objective
// is computed here, before publication, because EstimateObjective memoizes
// saturation state in the table and therefore must not run on a shared
// frozen table.
func populateTable(ix *index.Index, p index.Problem, set []int, prefix *index.DTable, prefixLen int) (*index.DTable, float64, error) {
	base := ix
	if prefix != nil {
		// Extend against the prefix table's own index instance: it is the
		// same (graph, L, R, seed) identity — walks are seeded per (node,
		// replicate), so any instance holds identical entries — but
		// ExtendFrom correctly refuses to mix table state across *Index
		// pointers, and the index cache may have rebuilt the key since the
		// prefix was cached.
		base = prefix.Index()
	}
	d, err := base.NewDTable(p)
	if err != nil {
		return nil, 0, err
	}
	if prefix != nil {
		if err := d.ExtendFrom(prefix.Snapshot(), set[prefixLen:]...); err != nil {
			return nil, 0, err
		}
	} else {
		for _, u := range set {
			d.Update(u)
		}
	}
	members := make([]bool, base.Graph().N())
	for _, u := range set {
		members[u] = true
	}
	return d, d.EstimateObjective(members), nil
}

// peek returns a pinned handle on the resident frozen table for key, or nil
// — never populating and never blocking. This is the degraded read path:
// when the index cannot be acquired (build shed, failed, or out-deadlined),
// an already-memoized table can still answer its exact set.
func (c *memoCache) peek(key memoKey) *memoHandle {
	h := c.core.Peek(key)
	if h == nil {
		return nil
	}
	return &memoHandle{h: h}
}

// dropIndexes removes every memoized table built under one of the given
// index keys — the index cache's eviction hook, which is what lets an index
// eviction actually release the index heap instead of leaving it pinned by
// dependent tables. Tables still pinned by an in-flight request are
// orphaned (no new request can reach them; their memory goes with the last
// release); tables mid-population are untouched, which is safe because a
// populating request holds a handle on its index, so that index cannot be
// the one being evicted. Returns the number of tables dropped.
func (c *memoCache) dropIndexes(keys []index.CacheKey) int {
	if len(keys) == 0 {
		return 0
	}
	evicted := make(map[index.CacheKey]bool, len(keys))
	for _, k := range keys {
		evicted[k] = true
	}
	return c.core.Invalidate(func(k memoKey) bool { return evicted[k.idx] })
}

// noteEmptyHit records an empty-set request served off the index.
func (c *memoCache) noteEmptyHit() {
	c.mu.Lock()
	c.emptyHits++
	c.mu.Unlock()
}

// noteTopHit records a TopGains request served from a per-entry top memo.
func (c *memoCache) noteTopHit() {
	c.mu.Lock()
	c.topHits++
	c.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters plus current residency.
func (c *memoCache) Stats() MemoStats {
	cs := c.core.Stats()
	c.mu.Lock()
	extended, empty, top := c.prefixExtended, c.emptyHits, c.topHits
	c.mu.Unlock()
	return MemoStats{
		Hits:           cs.Hits,
		Coalesced:      cs.Coalesced,
		Misses:         cs.Misses,
		PrefixExtended: extended,
		EmptyHits:      empty,
		TopHits:        top,
		Evictions:      cs.Evictions,
		Invalidated:    cs.Invalidated,
		PopulateErrors: cs.PopulateErrors,
		Resident:       cs.Resident,
		ResidentBytes:  cs.ResidentBytes,
	}
}

// pinnedRefs returns the total refcount across resident entries — test
// observability for "no table is still pinned once traffic stops".
func (c *memoCache) pinnedRefs() int { return c.core.PinnedRefs() }
