package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/index"
)

// This file is the engine's mutation entrypoint: ApplyDelta applies an edge
// delta to a served graph, bumps its mutation epoch, and repairs the
// resident walk indexes incrementally instead of dropping them for full
// rebuilds. The mutation path is the only writer of the engine's graphs
// map; the whole stale-state story hangs on two mechanisms acting together:
//
//   - The epoch rides in every derived identity. resolveParams snapshots
//     (graph, epoch) atomically under the graphs RLock, and the epoch flows
//     from params into the index cache key, the spill path, the
//     singleflight selection key and the memo key — so a request resolved
//     before a mutation computes consistently against the pre-mutation
//     graph, and a request resolved after can never hit a pre-mutation
//     artifact.
//
//   - Resident indexes are taken, repaired, and re-adopted under the
//     post-mutation key. Cache.TakeGraph transfers exclusive ownership of
//     the unpinned indexes (pinned ones are orphaned: their in-flight
//     readers finish on a consistent pre-mutation answer and the last
//     release frees them); each current-epoch index is repaired in place
//     (internal/index.Repair regenerates only the walk rows the delta
//     touched) and re-adopted, anything unrepairable is dropped, and every
//     displaced key's memoized D-tables are invalidated through the same
//     linkage an index eviction uses.

// ApplyDeltaRequest asks for a graph mutation. Graph may be empty when the
// engine serves exactly one graph.
type ApplyDeltaRequest struct {
	Graph string
	// Delta is the mutation: nodes to append, edges to add, edges to
	// remove. Validation is all-or-nothing (graph.ApplyDelta).
	Delta graph.Delta
	// BaseEpoch, when non-nil, makes the mutation conditional: it applies
	// only if the graph's current epoch still equals *BaseEpoch, failing
	// with CodeConflict otherwise. This is optimistic concurrency for
	// read-modify-write callers; unconditional mutations leave it nil.
	BaseEpoch *uint64
}

// ApplyDeltaResult reports one applied mutation.
type ApplyDeltaResult struct {
	// Epoch is the graph's new mutation epoch (monotone, one per applied
	// delta). Readers that pin this epoch are guaranteed post-mutation
	// answers; shard coordinators broadcast it to their workers.
	Epoch uint64
	// Nodes and Edges are the post-mutation graph dimensions.
	Nodes int
	Edges int
	// Touched is the number of nodes whose adjacency the delta changed.
	Touched int
	// IndexesRepaired counts resident walk indexes carried across the
	// mutation by incremental repair; IndexesDropped the resident indexes
	// that could not be (pinned by in-flight reads, built from raw walks,
	// or at an older epoch) and will rebuild on next use.
	IndexesRepaired int
	IndexesDropped  int
	// MemosDropped counts memoized D-tables invalidated because their
	// index identity is pre-mutation.
	MemosDropped int
}

// ApplyDelta applies a delta to the named graph. The mutation is
// copy-on-write — in-flight requests that already resolved their graph
// snapshot finish against the pre-mutation state, bit-identically — and
// serialized: concurrent ApplyDeltas are ordered by the engine, each
// observing its predecessor's epoch. Structural conflicts (adding an edge
// that exists, removing one that doesn't, a stale BaseEpoch) fail with
// CodeConflict and apply nothing.
//
// Resident walk indexes for the graph are repaired in place when possible
// (cost proportional to the delta's affected-walk population, not the
// graph), so a mutation on a warm engine keeps it warm.
//
// ctx is accepted for surface symmetry with the rest of the public API but
// not consulted: an admitted mutation is quick (no walk sampling beyond the
// affected rows) and must be all-or-nothing — aborting halfway would leave
// caches and graph out of step.
func (e *Engine) ApplyDelta(ctx context.Context, req ApplyDeltaRequest) (*ApplyDeltaResult, error) {
	name := e.soleGraphName(req.Graph)
	if req.Delta.Empty() {
		return nil, badRequestf("empty delta")
	}

	e.graphsMu.Lock()
	defer e.graphsMu.Unlock()

	g, ok := e.graphs[name]
	if !ok {
		return nil, &Error{Code: CodeNotFound, Message: fmt.Sprintf("unknown graph %q", name)}
	}
	if req.BaseEpoch != nil && *req.BaseEpoch != g.Epoch() {
		return nil, &Error{
			Code:    CodeConflict,
			Message: fmt.Sprintf("graph %q is at epoch %d, request expected %d", name, g.Epoch(), *req.BaseEpoch),
		}
	}
	ng, touched, err := g.ApplyDelta(req.Delta)
	if err != nil {
		if errors.Is(err, graph.ErrEdgeExists) || errors.Is(err, graph.ErrEdgeMissing) {
			return nil, &Error{Code: CodeConflict, Message: err.Error(), cause: err}
		}
		return nil, &Error{Code: CodeBadRequest, Message: err.Error(), cause: err}
	}

	res := &ApplyDeltaResult{
		Epoch:   ng.Epoch(),
		Nodes:   ng.N(),
		Edges:   ng.M(),
		Touched: len(touched),
	}

	// Displace every resident index for this graph. Unpinned current-epoch
	// indexes are repaired and re-adopted under the post-mutation key;
	// everything else (pinned, walk-adopted, older-epoch stragglers) is
	// dropped and rebuilds on next use. Stale keys — repaired or not — lose
	// their memoized D-tables.
	taken, orphaned := e.cache.TakeGraph(name)
	staleKeys := make([]index.CacheKey, 0, len(taken)+len(orphaned))
	staleKeys = append(staleKeys, orphaned...)
	res.IndexesDropped = len(orphaned)
	for _, t := range taken {
		staleKeys = append(staleKeys, t.Key)
		if t.Key.Epoch == g.Epoch() && t.Index.Repair(ng, touched) == nil {
			newKey := t.Key
			newKey.Epoch = ng.Epoch()
			if e.cache.Adopt(newKey, t.Index) == nil {
				res.IndexesRepaired++
				continue
			}
		}
		res.IndexesDropped++
	}
	if e.memo != nil {
		res.MemosDropped = e.memo.dropIndexes(staleKeys)
	}

	e.graphs[name] = ng
	return res, nil
}

// epochGuard rejects a read pinned to an epoch the graph has moved past
// (or hasn't reached — a laggard worker behind a coordinator that already
// mutated must not answer from pre-mutation state either). Shard scatters
// carry the coordinator's epoch so a mid-round mutation surfaces as a
// typed retryable CodeStaleEpoch instead of a silently mixed-epoch merge.
func epochGuard(p params, want *uint64) error {
	if want == nil || *want == p.epoch {
		return nil
	}
	return &Error{
		Code:    CodeStaleEpoch,
		Message: fmt.Sprintf("graph %q is at epoch %d, request pinned epoch %d", p.graphName, p.epoch, *want),
	}
}
