package engine

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/testleak"
)

func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.BarabasiAlbert(n, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	testleak.Check(t)
	if cfg.Graphs == nil {
		cfg.Graphs = map[string]*graph.Graph{"test": testGraph(t, 600, 1)}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// A memo table pinned by an in-flight request when its index is evicted is
// orphaned, not freed: the holder keeps reading a valid frozen table, no
// new request can acquire it, and its memory goes with the last release.
func TestIndexEvictionOrphansPinnedMemoTable(t *testing.T) {
	g := testGraph(t, 300, 6)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}})

	key := index.CacheKey{Graph: "test", L: 4, R: 10, Seed: 1}
	h, err := e.cache.Acquire(key, g, func() (*index.Index, error) {
		return index.BuildWorkers(g, key.L, key.R, key.Seed, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := memoKey{idx: key, problem: index.Problem2, set: "1,2"}
	mh, status, err := e.memo.acquire(mk, []int{1, 2}, h.Index())
	if err != nil {
		t.Fatal(err)
	}
	if status != MemoMiss {
		t.Fatalf("first acquire status %q, want %q", status, MemoMiss)
	}
	want := mh.Table().Gain(5)
	h.Release()

	// Evict the index while the memo handle is still held.
	if got := e.cache.EvictIdle(e.cache.Clock()); got != 1 {
		t.Fatalf("EvictIdle evicted %d, want 1", got)
	}
	ms := e.MemoStats()
	if ms.Invalidated != 1 || ms.Resident != 0 {
		t.Fatalf("memo after eviction: %+v, want 1 invalidated, 0 resident", ms)
	}
	// The orphaned table still serves identical reads.
	if got := mh.Table().Gain(5); got != want {
		t.Fatalf("orphaned table gain = %v, want %v", got, want)
	}
	mh.Release()
	if refs := e.MemoPinnedRefs(); refs != 0 {
		t.Fatalf("%d refs pinned after release", refs)
	}

	// A later request for the same set repopulates from scratch (the orphan
	// is unreachable), against a freshly built index.
	h2, err := e.cache.Acquire(key, g, func() (*index.Index, error) {
		return index.BuildWorkers(g, key.L, key.R, key.Seed, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	mh2, status, err := e.memo.acquire(mk, []int{1, 2}, h2.Index())
	if err != nil {
		t.Fatal(err)
	}
	defer mh2.Release()
	if status != MemoMiss {
		t.Fatalf("post-invalidation acquire status %q, want %q (fresh population)", status, MemoMiss)
	}
	// Same walks (same build identity), so the repopulated table agrees.
	if got := mh2.Table().Gain(5); got != want {
		t.Fatalf("repopulated table gain = %v, want %v", got, want)
	}
}
