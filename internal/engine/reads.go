package engine

import (
	"context"

	"repro/internal/core"
	"repro/internal/index"
)

// This file is the memoized gain read path's request/response surface: the
// point queries that make the materialized walk index worth serving —
// marginal gains, objective estimates and top-B sweeps against arbitrary
// seed sets, each a pure read of a frozen cached D-table after the first
// request for its set.

// memoizedTable resolves the serving D-table for a non-empty canonical set:
// the memo cache when enabled, a fresh replay otherwise. The returned
// release func must be called once the table has been read; status is the
// Memo* constant describing which path served it.
func (e *Engine) memoizedTable(p params, prob index.Problem, canon []int, setKey string, ix *index.Index) (d *index.DTable, release func(), status string, err error) {
	if e.memo != nil {
		mh, status, err := e.memo.acquire(memoKey{idx: p.cacheKey(), problem: prob, set: setKey}, canon, ix)
		if err != nil {
			return nil, nil, "", err
		}
		return mh.Table(), mh.Release, status, nil
	}
	d, err = ix.NewDTable(prob)
	if err != nil {
		return nil, nil, "", err
	}
	for _, u := range canon {
		d.Update(u)
	}
	return d, func() {}, MemoOff, nil
}

// degradedTable is the graceful-degradation fallback after an index
// acquisition failure: if the exact (index identity, problem, canonical set)
// table is already memoized and resident, the request can still be answered
// — exactly — from that frozen table, without the index. Returns a pinned
// handle (caller releases) and ticks the engine's degraded counter on
// success. Empty sets are excluded: their answers come off the index itself,
// and an index resident enough to serve them would not have failed to
// acquire in the first place.
func (e *Engine) degradedTable(p params, prob index.Problem, canon []int, setKey string) (*memoHandle, bool) {
	if e.memo == nil || len(canon) == 0 {
		return nil, false
	}
	mh := e.memo.peek(memoKey{idx: p.cacheKey(), problem: prob, set: setKey})
	if mh == nil {
		return nil, false
	}
	e.degraded.Add(1)
	return mh, true
}

// resolveRead validates the shared knobs of the read-path requests.
func (e *Engine) resolveRead(graph string, problem Problem, L, R int, seed uint64, set []int) (params, index.Problem, error) {
	prob, err := resolveProblem(problem)
	if err != nil {
		return params{}, 0, err
	}
	p, err := e.resolveParams(graph, L, R, seed)
	if err != nil {
		return params{}, 0, err
	}
	if err := validateSet("set", set, p.g); err != nil {
		return params{}, 0, err
	}
	return p, prob, nil
}

// Gain returns the marginal gain of each requested candidate against the
// committed seed set. After the first request for a set, the answer is a
// pure read of the frozen memoized D-table; empty-set requests are answered
// from the index's memoized empty-set gain vector with no D-table work at
// all.
func (e *Engine) Gain(ctx context.Context, req GainRequest) (*GainResult, error) {
	p, prob, err := e.resolveRead(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	if err != nil {
		return nil, err
	}
	if len(req.Nodes) == 0 {
		return nil, badRequestf("nodes are required")
	}
	if err := validateSet("nodes", req.Nodes, p.g); err != nil {
		return nil, err
	}
	runCtx, cancel := e.Context(ctx, 0)
	defer cancel()
	canon, setKey := canonicalSet(req.Set)
	h, built, _, err := e.acquireIndexCtx(runCtx, p, e.cfg.DefaultWorkers)
	if err != nil {
		if mh, ok := e.degradedTable(p, prob, canon, setKey); ok {
			gains := mh.Table().GainBatch(req.Nodes, make([]float64, 0, len(req.Nodes)))
			mh.Release()
			return &GainResult{Gains: gains, Memo: MemoHit, Degraded: true}, nil
		}
		return nil, wrapCompute(err)
	}
	defer h.Release()
	var gains []float64
	var status string
	if e.memo != nil && len(canon) == 0 {
		// Set-free gains come straight off the index: no D-table exists on
		// this path at all.
		all, err := h.Index().EmptySetGains(prob)
		if err != nil {
			return nil, wrapCompute(err)
		}
		gains = make([]float64, 0, len(req.Nodes))
		for _, u := range req.Nodes {
			gains = append(gains, all[u])
		}
		status = MemoEmpty
		e.memo.noteEmptyHit()
	} else {
		d, release, st, err := e.memoizedTable(p, prob, canon, setKey, h.Index())
		if err != nil {
			return nil, wrapCompute(err)
		}
		gains = d.GainBatch(req.Nodes, make([]float64, 0, len(req.Nodes)))
		release()
		status = st
	}
	return &GainResult{Gains: gains, IndexCached: !built, Memo: status}, nil
}

// Objective returns the estimated objective value of the seed set. The
// memoized path serves a scalar computed once at table population (the
// D-table objective scan memoizes saturation state, so it must not run on
// the shared frozen table).
func (e *Engine) Objective(ctx context.Context, req ObjectiveRequest) (*ObjectiveResult, error) {
	p, prob, err := e.resolveRead(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := e.Context(ctx, 0)
	defer cancel()
	canon, setKey := canonicalSet(req.Set)
	h, built, _, err := e.acquireIndexCtx(runCtx, p, e.cfg.DefaultWorkers)
	if err != nil {
		if mh, ok := e.degradedTable(p, prob, canon, setKey); ok {
			objective := mh.Objective()
			mh.Release()
			return &ObjectiveResult{Objective: objective, Memo: MemoHit, Degraded: true}, nil
		}
		return nil, wrapCompute(err)
	}
	defer h.Release()
	var objective float64
	var status string
	switch {
	case e.memo != nil && len(canon) == 0:
		objective, err = h.Index().EmptySetObjective(prob)
		if err != nil {
			return nil, wrapCompute(err)
		}
		status = MemoEmpty
		e.memo.noteEmptyHit()
	case e.memo != nil:
		mh, st, err := e.memo.acquire(memoKey{idx: p.cacheKey(), problem: prob, set: setKey}, canon, h.Index())
		if err != nil {
			return nil, wrapCompute(err)
		}
		objective = mh.Objective()
		mh.Release()
		status = st
	default:
		d, err := h.Index().NewDTable(prob)
		if err != nil {
			return nil, wrapCompute(err)
		}
		members := make([]bool, p.g.N())
		for _, u := range req.Set {
			if !members[u] {
				members[u] = true
				d.Update(u)
			}
		}
		objective = d.EstimateObjective(members)
		status = MemoOff
	}
	return &ObjectiveResult{Objective: objective, IndexCached: !built, Memo: status}, nil
}

// TopGains returns the B best candidates by marginal gain against the seed
// set, set members excluded, gain descending with ties broken by ascending
// node id.
func (e *Engine) TopGains(ctx context.Context, req TopGainsRequest) (*TopGainsResult, error) {
	p, prob, err := e.resolveRead(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	if err != nil {
		return nil, err
	}
	b := req.B
	if b == 0 {
		// Default B is 10, clamped so a tighter operator-configured MaxK
		// bounds the no-param path too.
		b = 10
		if b > e.cfg.MaxK {
			b = e.cfg.MaxK
		}
	}
	if b < 1 || b > e.cfg.MaxK {
		return nil, badRequestf("b=%d outside [1, %d]", req.B, e.cfg.MaxK)
	}
	workers := e.resolveWorkers(req.Workers)
	runCtx, cancel := e.Context(ctx, 0)
	defer cancel()
	canon, setKey := canonicalSet(req.Set)
	h, built, _, err := e.acquireIndexCtx(runCtx, p, workers)
	if err != nil {
		if mh, ok := e.degradedTable(p, prob, canon, setKey); ok {
			nodes, gains, derr := degradedTopGains(mh, b, canon, p.g.N(), workers)
			mh.Release()
			if derr == nil {
				return &TopGainsResult{B: b, Nodes: nodes, Gains: gains, Memo: MemoHit, Degraded: true}, nil
			}
		}
		return nil, wrapCompute(err)
	}
	defer h.Release()
	var nodes []int
	var gains []float64
	var status string
	switch {
	case e.memo != nil && len(canon) == 0:
		// Empty set: rank the index's memoized gain vector directly.
		all, err := h.Index().EmptySetGains(prob)
		if err != nil {
			return nil, wrapCompute(err)
		}
		nodes, gains = core.TopOfGains(all, nil, b)
		status = MemoEmpty
		e.memo.noteEmptyHit()
	case e.memo != nil:
		mh, st, err := e.memo.acquire(memoKey{idx: p.cacheKey(), problem: prob, set: setKey}, canon, h.Index())
		if err != nil {
			return nil, wrapCompute(err)
		}
		// Per-entry top-B result memo: the table is frozen, so the winners
		// for a budget are computed once and every repeat is an O(B) read
		// instead of an O(n) candidate sweep.
		if cn, cg, ok := mh.CachedTop(b); ok {
			nodes, gains = cn, cg
			e.memo.noteTopHit()
		} else {
			exclude := make([]bool, p.g.N())
			for _, u := range canon {
				exclude[u] = true
			}
			nodes, gains, err = core.TopGains(runCtx, mh.Table(), b, exclude, workers)
			if err != nil {
				mh.Release()
				return nil, wrapCompute(err)
			}
			mh.StoreTop(b, nodes, gains)
		}
		mh.Release()
		status = st
	default:
		d, err := h.Index().NewDTable(prob)
		if err != nil {
			return nil, wrapCompute(err)
		}
		for _, u := range canon {
			d.Update(u)
		}
		exclude := make([]bool, p.g.N())
		for _, u := range canon {
			exclude[u] = true
		}
		nodes, gains, err = core.TopGains(runCtx, d, b, exclude, workers)
		if err != nil {
			return nil, wrapCompute(err)
		}
		status = MemoOff
	}
	return &TopGainsResult{B: b, Nodes: nodes, Gains: gains, IndexCached: !built, Memo: status}, nil
}

// degradedTopGains answers a topgains request purely from a pinned frozen
// table: the per-entry top-B memo when a prior request paid the sweep, else
// a fresh candidate sweep over the table. The sweep runs under its own
// context — the request context is typically already dead on this path, and
// the sweep is a bounded O(n) read of resident state, not new heavy work.
func degradedTopGains(mh *memoHandle, b int, canon []int, n, workers int) ([]int, []float64, error) {
	if nodes, gains, ok := mh.CachedTop(b); ok {
		return nodes, gains, nil
	}
	exclude := make([]bool, n)
	for _, u := range canon {
		exclude[u] = true
	}
	nodes, gains, err := core.TopGains(context.Background(), mh.Table(), b, exclude, workers)
	if err != nil {
		return nil, nil, err
	}
	mh.StoreTop(b, nodes, gains)
	return nodes, gains, nil
}
