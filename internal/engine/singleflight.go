package engine

import (
	"context"
	"sync"
)

// singleflight coalesces concurrent calls with the same key into one
// execution of fn — the per-selection deduplication layer above the index
// cache's per-build coalescing. A trimmed-down reimplementation of the
// classic golang.org/x/sync/singleflight pattern (this module is
// dependency-free), with two context-aware twists:
//
//   - a follower stops waiting when its request context dies, while the
//     computation keeps running for the remaining waiters;
//   - fn receives a stop channel that closes when the last interested
//     caller is gone, so a computation every client has abandoned can be
//     aborted instead of burning cores until its own timeout.
type singleflight struct {
	mu sync.Mutex
	m  map[string]*sfCall
}

type sfCall struct {
	done    chan struct{} // closed when fn has returned
	stop    chan struct{} // closed when the last waiter detaches early
	val     any
	err     error
	dups    int  // followers attached over the call's lifetime
	waiters int  // callers (leader included) still interested
	stopped bool // stop already closed, guarded by singleflight.mu
}

// waiters reports how many followers are attached to an in-flight call for
// key (0 if none in flight) — test observability.
func (g *singleflight) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}

// detach drops one caller's interest in c; the detach that empties the
// waiter set closes c.stop. The stopped flag makes the close exactly-once:
// a follower can attach after waiters already hit 0 (the call stays in the
// map until fn returns) and detach again, which must not re-close. Closing
// after fn has returned is harmless — nothing selects on stop anymore.
func (g *singleflight) detach(c *sfCall) {
	g.mu.Lock()
	c.waiters--
	closeStop := c.waiters == 0 && !c.stopped
	if closeStop {
		c.stopped = true
	}
	g.mu.Unlock()
	if closeStop {
		close(c.stop)
	}
}

// Do returns the result of fn for key, running fn at most once across
// concurrent callers. shared reports whether this caller attached to
// another caller's execution. If ctx dies while waiting on another caller,
// Do returns ctx's error; once every caller's ctx has died, fn's stop
// channel closes so the computation can abort early.
func (g *singleflight) Do(ctx context.Context, key string, fn func(stop <-chan struct{}) (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*sfCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		c.waiters++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			g.detach(c)
			return nil, ctx.Err(), true
		}
	}
	c := &sfCall{done: make(chan struct{}), stop: make(chan struct{}), waiters: 1}
	g.m[key] = c
	g.mu.Unlock()

	// The leader runs fn synchronously, so its loss of interest (client
	// gone, timeout) is observed via its context instead.
	stopWatch := context.AfterFunc(ctx, func() { g.detach(c) })

	c.val, c.err = fn(c.stop)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	stopWatch()
	return c.val, c.err, false
}
