package engine

import (
	"testing"
)

// FuzzCanonicalSet asserts the set-normalization invariants the memo cache's
// correctness rests on: the canonical key is insensitive to input order and
// duplication, the canonical form is strictly increasing, and
// canonicalization is idempotent. (Injectivity across distinct sets is
// checked exhaustively in TestSetKeyInjectiveSmallUniverse.)
func FuzzCanonicalSet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{5, 3, 5, 0, 250, 3})
	f.Add([]byte{255, 254, 253, 0, 1, 2, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each byte is one node id (small universe maximizes duplicate and
		// adjacency collisions); the byte string doubles as a permutation
		// driver below.
		set := make([]int, len(data))
		for i, b := range data {
			set[i] = int(b)
		}
		canon, key := canonicalSet(set)

		for i := 1; i < len(canon); i++ {
			if canon[i] <= canon[i-1] {
				t.Fatalf("canonical form not strictly increasing: %v", canon)
			}
		}
		if (len(canon) == 0) != (key == "") {
			t.Fatalf("empty-set key mismatch: canon=%v key=%q", canon, key)
		}

		// Idempotence: canonicalizing the canonical form changes nothing.
		canon2, key2 := canonicalSet(canon)
		if key2 != key || len(canon2) != len(canon) {
			t.Fatalf("not idempotent: %v/%q vs %v/%q", canon, key, canon2, key2)
		}

		// Order-insensitivity: a deterministic data-derived shuffle with
		// every element doubled must produce the identical key.
		shuffled := make([]int, 0, 2*len(set))
		for i := range set {
			j := int(data[i]) % len(set)
			shuffled = append(shuffled, set[len(set)-1-i], set[j])
		}
		_, key3 := canonicalSet(shuffled)
		if key3 != key {
			t.Fatalf("key depends on order/duplication: %q (from %v) vs %q (from %v)",
				key, set, key3, shuffled)
		}

		// Membership round-trip: the canonical form holds exactly the
		// distinct input values.
		inSet := map[int]bool{}
		for _, u := range set {
			inSet[u] = true
		}
		if len(inSet) != len(canon) {
			t.Fatalf("canonical form has %d elements, input has %d distinct: %v vs %v",
				len(canon), len(inSet), canon, set)
		}
		for _, u := range canon {
			if !inSet[u] {
				t.Fatalf("canonical form invented element %d: %v from %v", u, canon, set)
			}
		}
	})
}
