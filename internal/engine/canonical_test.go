package engine

import (
	"testing"
)

func TestCanonicalSet(t *testing.T) {
	for _, tc := range []struct {
		in   []int
		want []int
		key  string
	}{
		{nil, []int{}, ""},
		{[]int{}, []int{}, ""},
		{[]int{5}, []int{5}, "5"},
		{[]int{5, 5, 5}, []int{5}, "5"},
		{[]int{9, 1, 5}, []int{1, 5, 9}, "1,5,9"},
		{[]int{3, 1, 3, 2, 1}, []int{1, 2, 3}, "1,2,3"},
	} {
		canon, key := canonicalSet(tc.in)
		if key != tc.key {
			t.Errorf("canonicalSet(%v): key %q, want %q", tc.in, key, tc.key)
		}
		if len(canon) != len(tc.want) {
			t.Errorf("canonicalSet(%v) = %v, want %v", tc.in, canon, tc.want)
			continue
		}
		for i := range tc.want {
			if canon[i] != tc.want[i] {
				t.Errorf("canonicalSet(%v) = %v, want %v", tc.in, canon, tc.want)
				break
			}
		}
	}
	// The input slice must not be mutated (handlers echo it back).
	in := []int{9, 1, 5, 1}
	canonicalSet(in)
	if in[0] != 9 || in[3] != 1 {
		t.Fatalf("canonicalSet mutated its input: %v", in)
	}
}

// Distinct canonical sets must get distinct keys — exhaustively over every
// subset of a 12-node universe (4096 sets), so a key match can never serve
// the wrong cached table.
func TestSetKeyInjectiveSmallUniverse(t *testing.T) {
	const universe = 12
	seen := make(map[string][]int, 1<<universe)
	for mask := 0; mask < 1<<universe; mask++ {
		var set []int
		for u := 0; u < universe; u++ {
			if mask&(1<<u) != 0 {
				set = append(set, u)
			}
		}
		_, key := canonicalSet(set)
		if prev, dup := seen[key]; dup {
			t.Fatalf("key collision: %v and %v both map to %q", prev, set, key)
		}
		seen[key] = set
	}
}
