package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// val is the test value type: content derived from the key so any holder can
// verify its handle never serves another key's value.
type val struct {
	key   int
	bytes int64
}

func populateVal(key int, bytes int64, populates *atomic.Int64) func() (val, int64, error) {
	return func() (val, int64, error) {
		if populates != nil {
			populates.Add(1)
		}
		return val{key: key, bytes: bytes}, bytes, nil
	}
}

func TestAcquireCoalescesConcurrentPopulates(t *testing.T) {
	c := New(Config[int, val]{MaxEntries: 4})
	var populates atomic.Int64
	const callers = 16
	var wg sync.WaitGroup
	handles := make([]*Handle[int, val], callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Acquire(7, populateVal(7, 100, &populates))
			if err != nil {
				t.Error(err)
				return
			}
			handles[i] = h
		}(i)
	}
	wg.Wait()
	if got := populates.Load(); got != 1 {
		t.Fatalf("%d concurrent Acquires ran %d populates, want exactly 1", callers, got)
	}
	for _, h := range handles {
		if h == nil {
			t.Fatal("missing handle")
		}
		if h.Value().key != 7 {
			t.Fatalf("handle serves key %d, want 7", h.Value().key)
		}
		h.Release()
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", s, callers-1)
	}
	if s.ResidentBytes != 100 {
		t.Fatalf("resident bytes = %d, want 100", s.ResidentBytes)
	}
}

// A waiter that coalesces onto a population whose leader errors must be
// counted as a failed populate, not a hit — the hit rate must stay truthful
// exactly when populations are failing.
func TestFailedPopulationNotCountedAsHit(t *testing.T) {
	c := New(Config[int, val]{})
	boom := errors.New("boom")
	gate := make(chan struct{})
	const waiters = 7
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Acquire(1, func() (val, int64, error) {
			<-gate // hold the population open until every waiter has attached
			return val{}, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v, want boom", err)
		}
	}()
	for c.PinnedRefs() == 0 { // leader's entry is in the map and pinned
		runtime.Gosched()
	}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Acquire(1, func() (val, int64, error) {
				t.Error("waiter ran its own populate")
				return val{}, 0, nil
			})
			if !errors.Is(err, boom) {
				t.Errorf("waiter err = %v, want boom", err)
			}
		}()
	}
	for c.PinnedRefs() < waiters+1 { // all waiters attached
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	s := c.Stats()
	if s.Hits != 0 {
		t.Fatalf("hits = %d, want 0 (failed waiters are not hits)", s.Hits)
	}
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.PopulateErrors != waiters+1 {
		t.Fatalf("populate errors = %d, want %d (leader + each waiter)", s.PopulateErrors, waiters+1)
	}
	if s.Resident != 0 {
		t.Fatalf("failed population left %d resident entries", s.Resident)
	}
	// The poisoned key repopulates cleanly.
	h, err := c.Acquire(1, populateVal(1, 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
}

func TestBytesBudgetEvictsLRU(t *testing.T) {
	var evicted []int
	var mu sync.Mutex
	c := New(Config[int, val]{
		MaxBytes: 250,
		OnEvict: func(victims []Entry[int, val]) {
			mu.Lock()
			for _, v := range victims {
				evicted = append(evicted, v.Key)
			}
			mu.Unlock()
		},
	})
	for key := 1; key <= 3; key++ { // 3 × 100 bytes: over the 250 budget
		h, err := c.Acquire(key, populateVal(key, 100, nil))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	s := c.Stats()
	if s.ResidentBytes > 250 {
		t.Fatalf("resident bytes %d over the 250 budget with no pins held", s.ResidentBytes)
	}
	if s.Resident != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 resident and 1 eviction", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want the LRU key [1]", evicted)
	}
}

// A referenced entry is never evicted, no matter how far over budget the
// cache is; the budget re-asserts itself at Release.
func TestBudgetNeverEvictsReferenced(t *testing.T) {
	c := New(Config[int, val]{MaxBytes: 100})
	big, err := c.Acquire(1, populateVal(1, 500, nil)) // alone worth 5× the budget
	if err != nil {
		t.Fatal(err)
	}
	for key := 2; key <= 4; key++ {
		h, err := c.Acquire(key, populateVal(key, 50, nil))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if got := big.Value().key; got != 1 {
		t.Fatalf("pinned value changed under pressure: key %d", got)
	}
	found := false
	for _, k := range c.Keys() {
		if k == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pinned entry dropped from the map: keys %v", c.Keys())
	}
	big.Release() // now unreferenced and far over budget: next sweep drops it
	if s := c.Stats(); s.ResidentBytes > 100 {
		t.Fatalf("resident bytes %d over budget after release", s.ResidentBytes)
	}
}

func TestInvalidateDropsMatchingAndOrphansPinned(t *testing.T) {
	var evicted []int
	c := New(Config[int, val]{
		OnEvict: func(victims []Entry[int, val]) {
			for _, v := range victims {
				evicted = append(evicted, v.Key)
			}
		},
	})
	for key := 1; key <= 4; key++ {
		h, err := c.Acquire(key, populateVal(key, 10, nil))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	pinned, err := c.Acquire(2, populateVal(2, 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Drop even keys: 4 (unreferenced) goes through OnEvict, 2 (pinned) is
	// orphaned — gone from the map but still readable through the handle.
	if got := c.Invalidate(func(k int) bool { return k%2 == 0 }); got != 2 {
		t.Fatalf("Invalidate dropped %d, want 2", got)
	}
	if pinned.Value().key != 2 {
		t.Fatalf("orphaned handle serves key %d, want 2", pinned.Value().key)
	}
	if len(evicted) != 1 || evicted[0] != 4 {
		t.Fatalf("OnEvict saw %v, want only the unreferenced victim [4]", evicted)
	}
	s := c.Stats()
	if s.Invalidated != 2 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 2 invalidated, 0 evictions", s)
	}
	if s.Resident != 2 {
		t.Fatalf("resident = %d, want 2 (odd keys)", s.Resident)
	}
	// A fresh Acquire for the orphaned key repopulates rather than reviving
	// the orphan.
	var populates atomic.Int64
	h2, err := c.Acquire(2, populateVal(2, 10, &populates))
	if err != nil {
		t.Fatal(err)
	}
	if populates.Load() != 1 {
		t.Fatal("acquire after invalidation reused the orphaned entry")
	}
	h2.Release()
	pinned.Release()
	if refs := c.PinnedRefs(); refs != 0 {
		t.Fatalf("%d refs pinned after all releases", refs)
	}
}

func TestPinBestPicksHighestScore(t *testing.T) {
	c := New(Config[int, val]{})
	for key := 1; key <= 5; key++ {
		h, err := c.Acquire(key, populateVal(key, 10, nil))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// Highest even key wins.
	h := c.PinBest(func(k int, v val) int {
		if k%2 != 0 {
			return 0
		}
		return k
	})
	if h == nil || h.Key() != 4 {
		t.Fatalf("PinBest = %v, want key 4", h)
	}
	// The pin protects the entry from eviction.
	if n := c.EvictIdle(c.Clock()); n != 4 {
		t.Fatalf("EvictIdle evicted %d, want 4 (all but the pinned entry)", n)
	}
	if keys := c.Keys(); len(keys) != 1 || keys[0] != 4 {
		t.Fatalf("resident after idle eviction = %v, want [4]", keys)
	}
	h.Release()
	if h := c.PinBest(func(int, val) int { return 0 }); h != nil {
		t.Fatal("PinBest pinned an entry on all-zero scores")
	}
}

func TestEvictIdleSparesRecentlyUsed(t *testing.T) {
	c := New(Config[int, val]{})
	for key := 1; key <= 3; key++ {
		h, _ := c.Acquire(key, populateVal(key, 10, nil))
		h.Release()
	}
	mark := c.Clock()
	h, _ := c.Acquire(3, populateVal(3, 10, nil)) // touch 3 past the mark
	h.Release()
	if got := c.EvictIdle(mark); got != 2 {
		t.Fatalf("EvictIdle evicted %d, want 2", got)
	}
	if keys := c.Keys(); len(keys) != 1 || keys[0] != 3 {
		t.Fatalf("resident = %v, want [3]", keys)
	}
}

// TestStressInvariants floods the cache from many goroutines with mixed
// acquires, releases, invalidations and idle evictions (run under -race in
// CI). Invariants: a held handle always serves its own key's value, no ref
// survives the traffic, the bytes budget holds once everything is released,
// and the traffic counters conserve (every acquire is exactly one of
// hit / miss / populate-error).
func TestStressInvariants(t *testing.T) {
	const (
		workers   = 8
		perWorker = 400
		keySpace  = 24
		maxBytes  = 10 * 64 // room for ~10 of 24 keys
	)
	c := New(Config[int, val]{MaxBytes: maxBytes, MaxEntries: 16})
	var acquires, failures, leaderFailures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				key := rnd.Intn(keySpace)
				switch rnd.Intn(10) {
				case 0:
					c.Invalidate(func(k int) bool { return k == key })
				case 1:
					c.EvictIdle(c.Clock() - int64(keySpace))
				default:
					acquires.Add(1)
					fail := rnd.Intn(20) == 0
					h, err := c.Acquire(key, func() (val, int64, error) {
						if fail {
							leaderFailures.Add(1)
							return val{}, 0, errors.New("synthetic populate failure")
						}
						return val{key: key, bytes: 64}, 64, nil
					})
					if err != nil {
						// Either our own synthetic failure or a leader's; both
						// are accounted as populate errors.
						failures.Add(1)
						continue
					}
					if got := h.Value().key; got != key {
						t.Errorf("handle for key %d serves %d", key, got)
					}
					h.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	if refs := c.PinnedRefs(); refs != 0 {
		t.Fatalf("%d refs still pinned after traffic stopped", refs)
	}
	s := c.Stats()
	if s.ResidentBytes > maxBytes {
		t.Fatalf("resident bytes %d over the %d budget at quiescence", s.ResidentBytes, maxBytes)
	}
	if s.Resident > 16 {
		t.Fatalf("resident %d over the 16-entry cap", s.Resident)
	}
	// Every acquire is exactly one of: hit, successful miss, failed leader
	// (counted as miss + populate-error), or failed waiter (populate-error
	// only) — so hits + misses + failed waiters must equal the acquires.
	failedWaiters := failures.Load() - leaderFailures.Load()
	if got := s.Hits + s.Misses + failedWaiters; got != acquires.Load() {
		t.Fatalf("hits(%d) + misses(%d) + failed waiters(%d) = %d, want %d acquires",
			s.Hits, s.Misses, failedWaiters, got, acquires.Load())
	}
	if s.PopulateErrors != failures.Load() {
		t.Fatalf("populate errors %d, but %d acquires returned errors", s.PopulateErrors, failures.Load())
	}
	// Sanity: the run exercised all three outcomes.
	if s.Hits == 0 || s.Misses == 0 || s.PopulateErrors == 0 {
		t.Fatalf("stress run missed an outcome class: %+v", s)
	}
}

// Eviction accounting must balance: everything that ever became resident is
// still resident, was evicted, or was invalidated.
func TestEvictionAccountingBalances(t *testing.T) {
	c := New(Config[int, val]{MaxEntries: 3})
	for key := 0; key < 10; key++ {
		h, err := c.Acquire(key, populateVal(key, 8, nil))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	c.Invalidate(func(k int) bool { return k == 9 })
	s := c.Stats()
	if got := int(s.Evictions+s.Invalidated) + s.Resident; got != 10 {
		t.Fatalf("evictions(%d) + invalidated(%d) + resident(%d) = %d, want 10",
			s.Evictions, s.Invalidated, s.Resident, got)
	}
	if s.ResidentBytes != int64(s.Resident)*8 {
		t.Fatalf("resident bytes %d disagree with %d resident × 8", s.ResidentBytes, s.Resident)
	}
}

func TestHandleDoubleReleaseIsNoOp(t *testing.T) {
	c := New(Config[int, val]{})
	h, err := c.Acquire(1, populateVal(1, 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release()
	if refs := c.PinnedRefs(); refs != 0 {
		t.Fatalf("refs = %d after double release", refs)
	}
	// The entry is still acquirable and its refcount intact.
	h2, err := c.Acquire(1, func() (val, int64, error) {
		return val{}, 0, fmt.Errorf("must not repopulate")
	})
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
}
