// Package cache implements the refcounted-LRU core shared by the daemon's
// two large-object caches: the walk-index cache (internal/index.Cache) and
// the memoized D-table cache (internal/server). Both need exactly the same
// machinery — an entry map with singleflight population through a ready
// channel, per-entry refcounts so nothing is freed under an in-flight
// request, a logical LRU clock driving victim selection, and traffic stats —
// and before this package existed each carried a private copy, so every
// lifecycle bug had to be found and fixed twice.
//
// The core is generic over key and value and policy-free: capacity is
// expressed as an entry-count cap and/or a bytes budget (values report their
// size at population time), and the cache-specific behaviors are hooks on
// top of it. The index cache spills victims to disk from its OnEvict hook;
// the memo cache pins the longest cached prefix of a set through PinBest
// while extending it; and the serving layer links the two caches with
// Invalidate, dropping memoized tables when the index they were built from
// is evicted so an evicted index's heap is actually released instead of
// being pinned by its dependents.
//
// # Lifecycle invariants
//
//   - An entry is populated at most once per residency: concurrent Acquires
//     for one key coalesce onto a single populate call.
//   - A referenced entry (refs > 0) is never chosen as an eviction victim,
//     so a handle's value can never be dropped from the cache's accounting
//     while the handle is live. Invalidate is the one operation that removes
//     referenced entries, and it only orphans them: the map entry goes away
//     (no new Acquire can pin it) but the value itself stays reachable
//     through existing handles until the last Release.
//   - A failed populate leaves nothing behind: the leader removes its entry
//     before publishing the error, so the next Acquire repopulates.
package cache

import (
	"fmt"
	"sync"
	"time"
)

// Stats counts cache traffic. Snapshot via Cache.Stats.
type Stats struct {
	// Hits counts Acquires served by a resident value; Coalesced the subset
	// that waited on a population already in flight. A waiter whose leader
	// fails is counted under PopulateErrors, not Hits — it received an
	// error, and counting it as a hit would inflate the hit rate exactly
	// when populations are failing.
	Hits      int64
	Coalesced int64
	// Misses counts Acquires that ran the populate function.
	Misses int64
	// Evictions counts entries dropped by the entry/bytes budgets or
	// EvictIdle; Invalidated counts entries dropped by Invalidate.
	Evictions   int64
	Invalidated int64
	// PopulateErrors counts failed Acquires: one for the failed populate
	// itself plus one per waiter that coalesced onto it.
	PopulateErrors int64
	// Resident is the number of entries (including in-flight populations) at
	// snapshot time; ResidentBytes the published sizes of the ready ones.
	Resident      int
	ResidentBytes int64
}

// Entry is one resident (key, value) pair, as reported by Resident and the
// OnEvict hook.
type Entry[K comparable, V any] struct {
	Key   K
	Value V
	Bytes int64
}

// Config configures a Cache.
type Config[K comparable, V any] struct {
	// MaxEntries bounds the number of entries (<= 0 means unbounded).
	MaxEntries int
	// MaxBytes bounds the sum of published entry sizes (<= 0 means
	// unbounded). Both bounds are soft while every candidate victim is
	// referenced or still populating: the cache never frees a value in use.
	MaxBytes int64
	// OnEvict, when non-nil, receives each batch of unreferenced victims
	// dropped by the budgets or EvictIdle. It is called without the cache
	// lock, on whichever goroutine triggered the eviction, so it may call
	// back into this or another cache; long work (disk spills) should be
	// handed off to a background goroutine.
	OnEvict func([]Entry[K, V])
}

// Cache is the generic refcounted-LRU core. Create with New.
type Cache[K comparable, V any] struct {
	mu            sync.Mutex
	cfg           Config[K, V]
	entries       map[K]*entry[K, V]
	clock         int64 // logical LRU clock, bumped on every Acquire
	residentBytes int64
	stats         Stats
}

type entry[K comparable, V any] struct {
	key     K
	ready   chan struct{} // closed once value/err are set
	value   V
	bytes   int64
	err     error
	refs    int
	lastUse int64
}

// isReady reports whether the entry's population has completed (without
// blocking); must only be trusted under the cache lock or after <-e.ready.
func (e *entry[K, V]) isReady() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Handle pins one cached value. Callers must Release exactly once; Release
// after the first is a no-op.
type Handle[K comparable, V any] struct {
	c    *Cache[K, V]
	e    *entry[K, V]
	once sync.Once
}

// Value returns the pinned value.
func (h *Handle[K, V]) Value() V { return h.e.value }

// Key returns the cache key the handle was acquired under.
func (h *Handle[K, V]) Key() K { return h.e.key }

// Release unpins the value, making its entry eligible for eviction (and, if
// the entry was orphaned by Invalidate, letting the last holder's release
// free the value for collection).
func (h *Handle[K, V]) Release() {
	h.once.Do(func() {
		h.c.mu.Lock()
		h.e.refs--
		victims := h.c.evictOverBudgetLocked()
		h.c.mu.Unlock()
		h.c.notify(victims)
	})
}

// New returns a Cache with the given budgets and hooks.
func New[K comparable, V any](cfg Config[K, V]) *Cache[K, V] {
	return &Cache[K, V]{cfg: cfg, entries: make(map[K]*entry[K, V])}
}

// Acquire returns a handle on the value for key, populating it at most once
// per residency: a resident entry is returned immediately, a population in
// flight is awaited (coalescing), and otherwise the caller's populate
// function runs — outside the cache lock, so it may take as long as it
// needs and may call PinBest on this cache. populate returns the value and
// its approximate size in bytes (charged against MaxBytes).
//
// The returned values follow func-call convention: on error the handle is
// nil and nothing needs releasing.
func (c *Cache[K, V]) Acquire(key K, populate func() (V, int64, error)) (*Handle[K, V], error) {
	c.mu.Lock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.refs++
		e.lastUse = c.clock
		if e.isReady() {
			// Entries that fail to populate are removed before their error is
			// published, so a resident ready entry is always a success.
			c.stats.Hits++
			c.mu.Unlock()
			return &Handle[K, V]{c: c, e: e}, nil
		}
		c.mu.Unlock()
		<-e.ready
		c.mu.Lock()
		if e.err != nil {
			// The population leader failed and removed the entry; this waiter
			// got an error, not a value, so it counts as a failed populate —
			// drop our ref on the orphaned entry (no eviction bookkeeping
			// needed, it is no longer in the map).
			c.stats.PopulateErrors++
			e.refs--
			c.mu.Unlock()
			return nil, e.err
		}
		c.stats.Hits++
		c.stats.Coalesced++
		c.mu.Unlock()
		return &Handle[K, V]{c: c, e: e}, nil
	}
	e := &entry[K, V]{key: key, ready: make(chan struct{}), refs: 1, lastUse: c.clock}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	v, bytes, err := runPopulate(populate)

	c.mu.Lock()
	e.value, e.bytes, e.err = v, bytes, err
	var victims []Entry[K, V]
	if err != nil {
		c.stats.PopulateErrors++
		e.refs--
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else if c.entries[key] == e {
		c.residentBytes += bytes
		victims = c.evictOverBudgetLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	c.notify(victims)
	if err != nil {
		return nil, err
	}
	return &Handle[K, V]{c: c, e: e}, nil
}

// runPopulate invokes populate with a panic boundary: a panicking populate
// becomes a failed populate. Without this, a panic would unwind past the
// entry's ready-channel close, leaving every coalesced waiter blocked forever
// on an entry that can neither succeed nor fail — and when population runs on
// a detached goroutine (the index cache's context-decoupled builds), it would
// kill the whole process.
func runPopulate[V any](populate func() (V, int64, error)) (v V, bytes int64, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("cache: populate panicked: %v", p)
		}
	}()
	return populate()
}

// Peek returns a handle on the ready resident value for key, or nil when the
// key is absent, still populating, or failed — never blocking and never
// populating. This is the degraded read path: when new work cannot be
// admitted or a rebuild fails, a peeked value lets the caller answer from
// what is already resident. A successful peek pins the entry like Acquire
// (the caller must Release) and refreshes its LRU position, but is not
// counted in Hits — degraded traffic should not flatter the hit rate.
func (c *Cache[K, V]) Peek(key K) *Handle[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.isReady() || e.err != nil {
		return nil
	}
	c.clock++
	e.refs++
	e.lastUse = c.clock
	return &Handle[K, V]{c: c, e: e}
}

// PinBest scans the ready resident entries under the lock, scoring each with
// score, and returns a pinned handle on the highest-scoring entry with a
// positive score — or nil if none scores positive. Ties break arbitrarily.
// score must be fast and must not call back into the cache.
//
// The memo cache uses this to pin the longest cached prefix of a set before
// extending from its snapshot, so eviction cannot free the prefix mid-copy.
// Pinning does not count as a use on the LRU clock: extending from a table
// is the cache's own bookkeeping, not client traffic.
func (c *Cache[K, V]) PinBest(score func(key K, value V) int) *Handle[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry[K, V]
	bestScore := 0
	for _, e := range c.entries {
		if !e.isReady() || e.err != nil {
			continue
		}
		if s := score(e.key, e.value); s > bestScore {
			best, bestScore = e, s
		}
	}
	if best == nil {
		return nil
	}
	best.refs++
	return &Handle[K, V]{c: c, e: best}
}

// Invalidate drops every ready entry whose key matches and returns how many
// were dropped. Unreferenced victims are reported to OnEvict like ordinary
// evictions; entries still pinned by a handle are orphaned instead —
// removed from the map so no later Acquire can reach them, their value
// released for collection when the last holder calls Release — and are NOT
// reported to OnEvict (a value still in use must not be spilled or reused).
// Entries still populating are skipped: their leader holds the resources
// the invalidation targets pinned anyway, and they complete normally.
func (c *Cache[K, V]) Invalidate(match func(K) bool) int {
	c.mu.Lock()
	var victims []Entry[K, V]
	dropped := 0
	for _, e := range c.entries {
		if !e.isReady() || e.err != nil || !match(e.key) {
			continue
		}
		c.removeLocked(e)
		c.stats.Invalidated++
		dropped++
		if e.refs == 0 {
			victims = append(victims, Entry[K, V]{Key: e.key, Value: e.value, Bytes: e.bytes})
		}
	}
	c.mu.Unlock()
	c.notify(victims)
	return dropped
}

// Take removes every ready entry whose key matches — like Invalidate — but
// transfers ownership of the unreferenced victims to the caller instead of
// routing them through OnEvict: once Take returns, no map entry and no live
// handle references a returned value, so the caller may mutate it freely
// (the index cache uses this to repair walk indexes in place after a graph
// mutation). Entries still pinned by a handle are orphaned exactly as
// Invalidate orphans them — removed from the map, value released for
// collection when the last holder calls Release — and are reported by key
// only, since their values are still shared with live readers. Entries
// still populating are skipped entirely: their leader will publish under a
// key the caller has already decided is stale, which is wasteful but
// harmless (nothing resolves that key again) and the leader's handle keeps
// the entry pinned anyway.
func (c *Cache[K, V]) Take(match func(K) bool) (taken []Entry[K, V], orphaned []K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if !e.isReady() || e.err != nil || !match(e.key) {
			continue
		}
		c.removeLocked(e)
		c.stats.Invalidated++
		if e.refs == 0 {
			taken = append(taken, Entry[K, V]{Key: e.key, Value: e.value, Bytes: e.bytes})
		} else {
			orphaned = append(orphaned, e.key)
		}
	}
	return taken, orphaned
}

// EvictIdle evicts every unreferenced entry whose last use is not newer than
// olderThan on the logical clock (see Clock and StartEvictor) and returns
// how many were evicted. Victims flow through OnEvict like any other
// eviction, so a spill hook keeps its asynchrony here too.
func (c *Cache[K, V]) EvictIdle(olderThan int64) int {
	c.mu.Lock()
	var victims []Entry[K, V]
	for {
		v := c.popVictimLocked(func(e *entry[K, V]) bool { return e.lastUse <= olderThan })
		if v == nil {
			break
		}
		victims = append(victims, Entry[K, V]{Key: v.key, Value: v.value, Bytes: v.bytes})
	}
	c.mu.Unlock()
	c.notify(victims)
	return len(victims)
}

// Clock returns the current logical LRU clock (bumped on every Acquire).
func (c *Cache[K, V]) Clock() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// StartEvictor launches a goroutine that every interval evicts entries not
// acquired since the previous tick — the background eviction that keeps a
// long-idle daemon's heap proportional to its working set rather than its
// history. The returned stop function terminates the goroutine and must be
// called before the cache is abandoned.
func (c *Cache[K, V]) StartEvictor(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		mark := c.Clock()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.EvictIdle(mark)
				mark = c.Clock()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Resident returns a snapshot of the ready entries (for spill-at-shutdown
// and stats detail).
func (c *Cache[K, V]) Resident() []Entry[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry[K, V], 0, len(c.entries))
	for _, e := range c.entries {
		if e.isReady() && e.err == nil {
			out = append(out, Entry[K, V]{Key: e.key, Value: e.value, Bytes: e.bytes})
		}
	}
	return out
}

// Keys returns every key in the map, including entries still populating.
func (c *Cache[K, V]) Keys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]K, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	return keys
}

// Stats returns a snapshot of the traffic counters plus current residency.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = len(c.entries)
	s.ResidentBytes = c.residentBytes
	return s
}

// PinnedRefs returns the total refcount across resident entries — test
// observability for "nothing stays pinned once traffic stops". Orphaned
// entries (failed populations, invalidated-while-referenced) are not in the
// map and therefore not counted.
func (c *Cache[K, V]) PinnedRefs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, e := range c.entries {
		total += e.refs
	}
	return total
}

// notify hands victims to the OnEvict hook, outside the lock.
func (c *Cache[K, V]) notify(victims []Entry[K, V]) {
	if c.cfg.OnEvict != nil && len(victims) > 0 {
		c.cfg.OnEvict(victims)
	}
}

// removeLocked drops e from the map and its published size from the bytes
// accounting.
func (c *Cache[K, V]) removeLocked(e *entry[K, V]) {
	delete(c.entries, e.key)
	c.residentBytes -= e.bytes
}

// overBudgetLocked reports whether either budget is exceeded.
func (c *Cache[K, V]) overBudgetLocked() bool {
	return (c.cfg.MaxEntries > 0 && len(c.entries) > c.cfg.MaxEntries) ||
		(c.cfg.MaxBytes > 0 && c.residentBytes > c.cfg.MaxBytes)
}

// evictOverBudgetLocked removes least-recently-used unreferenced entries
// until both budgets are satisfied, returning the victims for the caller to
// hand to OnEvict after releasing the lock (a spill hook writing a large
// value to disk must not block other Acquires). Entries still populating or
// still referenced are never evicted.
func (c *Cache[K, V]) evictOverBudgetLocked() []Entry[K, V] {
	var victims []Entry[K, V]
	for c.overBudgetLocked() {
		v := c.popVictimLocked(func(*entry[K, V]) bool { return true })
		if v == nil {
			break
		}
		victims = append(victims, Entry[K, V]{Key: v.key, Value: v.value, Bytes: v.bytes})
	}
	return victims
}

// popVictimLocked removes and returns the LRU ready entry with refs == 0
// matching ok, or nil if none qualifies.
func (c *Cache[K, V]) popVictimLocked(ok func(*entry[K, V]) bool) *entry[K, V] {
	var victim *entry[K, V]
	for _, e := range c.entries {
		if !e.isReady() {
			continue // still populating
		}
		if e.refs > 0 || e.err != nil || !ok(e) {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	if victim == nil {
		return nil
	}
	c.removeLocked(victim)
	c.stats.Evictions++
	return victim
}
