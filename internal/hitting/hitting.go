// Package hitting computes exact L-length random-walk hitting quantities by
// dynamic programming, implementing Theorems 2.1, 2.2 and 2.3 of the paper:
//
//   - h^L_{uv}: expected hitting time from node u to node v (Eq. 2),
//   - h^L_{uS}: generalized hitting time from u to a set S (Eq. 4),
//   - p^L_{uS}: probability that an L-length walk from u hits S (Eq. 8),
//
// together with the two objective functions built on them,
// F1(S) = nL − Σ_{u∈V\S} h^L_{uS} and F2(S) = Σ_{u∈V} p^L_{uS}.
//
// A single evaluation of h^L_{·S} or p^L_{·S} for all sources costs O(mL)
// time and O(n) space, which is what makes the DP-based greedy algorithm
// O(k n m L) overall and motivates the paper's approximate algorithm.
package hitting

import (
	"fmt"

	"repro/internal/graph"
)

// Evaluator computes exact hitting quantities on a fixed graph with a fixed
// walk-length bound L, reusing internal buffers across calls. It is not safe
// for concurrent use; create one Evaluator per goroutine.
type Evaluator struct {
	g *graph.Graph
	l int

	invDeg []float64 // 1/weightDegree(u), 0 for isolated nodes
	inS    []bool
	prev   []float64
	cur    []float64
	out    []float64
}

// NewEvaluator returns an evaluator for graph g with walk length bound L.
// L must be non-negative.
func NewEvaluator(g *graph.Graph, L int) (*Evaluator, error) {
	if L < 0 {
		return nil, fmt.Errorf("hitting: negative walk length %d", L)
	}
	n := g.N()
	e := &Evaluator{
		g:      g,
		l:      L,
		invDeg: make([]float64, n),
		inS:    make([]bool, n),
		prev:   make([]float64, n),
		cur:    make([]float64, n),
	}
	for u := 0; u < n; u++ {
		if d := g.WeightDegree(u); d > 0 {
			e.invDeg[u] = 1 / d
		}
	}
	return e, nil
}

// L returns the walk length bound.
func (e *Evaluator) L() int { return e.l }

// Graph returns the underlying graph.
func (e *Evaluator) Graph() *graph.Graph { return e.g }

func (e *Evaluator) setS(S []int) error {
	for i := range e.inS {
		e.inS[i] = false
	}
	for _, v := range S {
		if v < 0 || v >= e.g.N() {
			return fmt.Errorf("hitting: set member %d out of range [0,%d): %w", v, e.g.N(), graph.ErrNodeRange)
		}
		e.inS[v] = true
	}
	return nil
}

// HitTimesToSet fills dst (allocating if nil or short) with h^L_{uS} for
// every source u and returns it. Members of S have hitting time 0; nodes
// that cannot reach S within L hops (including isolated nodes) have hitting
// time L, per Eq. (3): T^L_{uS} is capped at L.
//
// The recursion of Eq. (4) is evaluated bottom-up over walk lengths
// l = 0..L: h^0 ≡ 0 and h^l(u) = 1 + Σ_w p_uw · h^{l−1}(w) for u ∉ S, with
// h^{l−1}(w) = 0 for w ∈ S (walks terminate on entering S). Isolated nodes
// outside S are pinned at l directly because they have no outgoing
// transition: their walk never moves, so T = L.
func (e *Evaluator) HitTimesToSet(S []int, dst []float64) ([]float64, error) {
	if err := e.setS(S); err != nil {
		return nil, err
	}
	n := e.g.N()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]

	prev, cur := e.prev, e.cur
	for u := range prev {
		prev[u] = 0 // h^0 ≡ 0
	}
	for l := 1; l <= e.l; l++ {
		for u := 0; u < n; u++ {
			switch {
			case e.inS[u]:
				cur[u] = 0
			case e.invDeg[u] == 0:
				cur[u] = float64(l) // isolated: the walk never moves
			default:
				sum := 0.0
				row := e.g.Neighbors(u)
				if ws := e.g.NeighborWeights(u); ws != nil {
					for i, w := range row {
						sum += ws[i] * prev[w]
					}
				} else {
					for _, w := range row {
						sum += prev[w]
					}
				}
				cur[u] = 1 + sum*e.invDeg[u]
			}
		}
		prev, cur = cur, prev
	}
	copy(dst, prev)
	e.prev, e.cur = prev, cur
	return dst, nil
}

// HitTimeToNode returns h^L_{uv} for all sources u (Theorem 2.1), the
// single-target special case of HitTimesToSet.
func (e *Evaluator) HitTimeToNode(v int, dst []float64) ([]float64, error) {
	return e.HitTimesToSet([]int{v}, dst)
}

// HitProbsToSet fills dst with p^L_{uS} for every source u and returns it
// (Theorem 2.3): p^0(u) = [u ∈ S]; for l > 0, p^l(u) = 1 if u ∈ S and
// Σ_w p_uw · p^{l−1}(w) otherwise.
func (e *Evaluator) HitProbsToSet(S []int, dst []float64) ([]float64, error) {
	if err := e.setS(S); err != nil {
		return nil, err
	}
	n := e.g.N()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]

	prev, cur := e.prev, e.cur
	for u := 0; u < n; u++ {
		if e.inS[u] {
			prev[u] = 1
		} else {
			prev[u] = 0
		}
	}
	for l := 1; l <= e.l; l++ {
		for u := 0; u < n; u++ {
			switch {
			case e.inS[u]:
				cur[u] = 1
			case e.invDeg[u] == 0:
				cur[u] = 0
			default:
				sum := 0.0
				row := e.g.Neighbors(u)
				if ws := e.g.NeighborWeights(u); ws != nil {
					for i, w := range row {
						sum += ws[i] * prev[w]
					}
				} else {
					for _, w := range row {
						sum += prev[w]
					}
				}
				cur[u] = sum * e.invDeg[u]
			}
		}
		prev, cur = cur, prev
	}
	copy(dst, prev)
	e.prev, e.cur = prev, cur
	return dst, nil
}

// F1 returns the exact Problem-1 objective F1(S) = nL − Σ_{u∈V\S} h^L_{uS}
// (Eq. 6). F1(∅) = 0 and F1 is nondecreasing submodular (Theorem 3.1).
func (e *Evaluator) F1(S []int) (float64, error) {
	h, err := e.HitTimesToSet(S, e.scratch())
	if err != nil {
		return 0, err
	}
	total := 0.0
	for u, hu := range h {
		if !e.inS[u] {
			total += hu
		}
	}
	return float64(e.g.N())*float64(e.l) - total, nil
}

// AverageHittingTime returns M1(S) = Σ_{u∈V\S} h^L_{uS} / |V\S|, the paper's
// AHT effectiveness metric, computed exactly. If S covers all of V it
// returns 0.
func (e *Evaluator) AverageHittingTime(S []int) (float64, error) {
	h, err := e.HitTimesToSet(S, e.scratch())
	if err != nil {
		return 0, err
	}
	total, cnt := 0.0, 0
	for u, hu := range h {
		if !e.inS[u] {
			total += hu
			cnt++
		}
	}
	if cnt == 0 {
		return 0, nil
	}
	return total / float64(cnt), nil
}

// F2 returns the exact Problem-2 objective F2(S) = Σ_{u∈V} p^L_{uS} (Eq. 7),
// which also equals the paper's EHN effectiveness metric M2(S). F2(∅) = 0
// and F2 is nondecreasing submodular (Theorem 3.2).
func (e *Evaluator) F2(S []int) (float64, error) {
	p, err := e.HitProbsToSet(S, e.scratch())
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, pu := range p {
		total += pu
	}
	return total, nil
}

// scratch returns a per-evaluator output buffer, grown on demand. F1/F2
// reuse it across calls so repeated objective evaluations do not allocate.
func (e *Evaluator) scratch() []float64 {
	if e.out == nil {
		e.out = make([]float64, e.g.N())
	}
	return e.out
}
