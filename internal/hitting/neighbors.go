package hitting

import (
	"fmt"
	"sort"
)

// This file implements the truncated-proximity utilities of Sarkar & Moore
// [29, 30], the works the paper's L-length hitting-time definition builds on
// (Section 2): all-pairs truncated hitting times, truncated commute times,
// and k-closest-neighbor queries. The paper's reference [29] is exactly the
// "finding closest truncated-commute-time neighbors" problem, so a faithful
// reproduction of the substrate includes these queries.

// HitTimeMatrix returns the full matrix H with H[u][v] = h^L_{uv}, computed
// by n runs of the single-target DP. It is O(n·m·L) time and O(n²) space:
// intended for analysis on small graphs (the DP-greedy regime).
func (e *Evaluator) HitTimeMatrix() ([][]float64, error) {
	n := e.g.N()
	h := make([][]float64, n)
	buf := make([]float64, n)
	for v := 0; v < n; v++ {
		col, err := e.HitTimeToNode(v, buf)
		if err != nil {
			return nil, err
		}
		// col[u] = h_{uv}: store column-wise into rows.
		for u := 0; u < n; u++ {
			if h[u] == nil {
				h[u] = make([]float64, n)
			}
			h[u][v] = col[u]
		}
	}
	return h, nil
}

// CommuteTime returns the truncated commute time c^L_{uv} = h^L_{uv} +
// h^L_{vu}, the symmetric proximity measure of Sarkar & Moore. It runs two
// single-target DPs (O(mL)).
func (e *Evaluator) CommuteTime(u, v int) (float64, error) {
	n := e.g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("hitting: commute endpoints (%d,%d) out of range [0,%d)", u, v, n)
	}
	huv, err := e.HitTimeToNode(v, e.scratch())
	if err != nil {
		return 0, err
	}
	toU := huv[u]
	hvu, err := e.HitTimeToNode(u, e.scratch())
	if err != nil {
		return 0, err
	}
	return toU + hvu[v], nil
}

// Neighbor pairs a node with its proximity value for ranked queries.
type Neighbor struct {
	Node  int
	Value float64
}

// ClosestByHittingTime returns the k nodes with the smallest truncated
// hitting time h^L_{uv} *to* the target v (excluding v itself), ties broken
// by node id — the query of Sarkar & Moore [29]. Nodes that cannot reach v
// (value L) are included only if needed to fill k.
func (e *Evaluator) ClosestByHittingTime(v, k int) ([]Neighbor, error) {
	n := e.g.N()
	if v < 0 || v >= n {
		return nil, fmt.Errorf("hitting: target %d out of range [0,%d)", v, n)
	}
	if k < 0 {
		return nil, fmt.Errorf("hitting: negative k=%d", k)
	}
	if k > n-1 {
		k = n - 1
	}
	h, err := e.HitTimeToNode(v, e.scratch())
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, 0, n-1)
	for u := 0; u < n; u++ {
		if u == v {
			continue
		}
		out = append(out, Neighbor{Node: u, Value: h[u]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value < out[j].Value
		}
		return out[i].Node < out[j].Node
	})
	return out[:k], nil
}

// ClosestByCommuteTime returns the k nodes with the smallest truncated
// commute time c^L_{uv} to v, ties broken by node id. It costs one DP for
// h_{·v} plus n single-target DPs for the reverse directions on directed
// graphs; on undirected graphs the reverse hitting times still differ
// (hitting times are asymmetric even on undirected graphs), so both
// directions are always computed — h_{v·} comes from one pass of
// HitTimesFromSource.
func (e *Evaluator) ClosestByCommuteTime(v, k int) ([]Neighbor, error) {
	n := e.g.N()
	if v < 0 || v >= n {
		return nil, fmt.Errorf("hitting: target %d out of range [0,%d)", v, n)
	}
	if k < 0 {
		return nil, fmt.Errorf("hitting: negative k=%d", k)
	}
	if k > n-1 {
		k = n - 1
	}
	toV, err := e.HitTimeToNode(v, nil)
	if err != nil {
		return nil, err
	}
	fromV, err := e.HitTimesFromSource(v, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, 0, n-1)
	for u := 0; u < n; u++ {
		if u == v {
			continue
		}
		out = append(out, Neighbor{Node: u, Value: toV[u] + fromV[u]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value < out[j].Value
		}
		return out[i].Node < out[j].Node
	})
	return out[:k], nil
}

// HitTimesFromSource fills dst with h^L_{su} for a fixed source s and every
// target u: the row of the hitting-time matrix, as opposed to
// HitTimeToNode's column. It is computed by evolving the source's position
// distribution forward for L steps and accumulating first-visit times —
// O(mL) time like the column DP, but over distributions instead of value
// functions.
//
// Derivation: h_{su} = Σ_{t=1..L} t·Pr[T_su = t] + L·Pr[T_su > L], where
// Pr[T_su = t] is the probability the walk first visits u at step t. The
// first-visit process for target u is the walk absorbed at u; evolving one
// absorbed chain per target would be O(n·mL). Instead we evolve a single
// non-absorbed distribution and correct: for each target u, the absorbed
// chain's mass at u at step t equals the non-absorbed chain's arrival mass
// minus mass that re-arrives after an earlier visit. Exactness requires the
// absorbed dynamics, so this routine evolves one absorbed chain per target
// in blocks, but shares the O(n) state buffers; asymptotically O(n·mL) yet
// with small constants. For the n ≤ a-few-thousand graphs where matrix
// rows matter (analysis, k-closest queries) this is acceptable; column
// queries (HitTimeToNode) remain O(mL).
func (e *Evaluator) HitTimesFromSource(s int, dst []float64) ([]float64, error) {
	n := e.g.N()
	if s < 0 || s >= n {
		return nil, fmt.Errorf("hitting: source %d out of range [0,%d)", s, n)
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	// One absorbed-chain evolution per target, reusing two O(n) buffers.
	cur := make([]float64, n)
	next := make([]float64, n)
	for u := 0; u < n; u++ {
		if u == s {
			dst[u] = 0
			continue
		}
		for i := range cur {
			cur[i] = 0
		}
		cur[s] = 1
		expected := 0.0
		survive := 1.0 // probability the walk has not yet hit u
		for t := 1; t <= e.l; t++ {
			for i := range next {
				next[i] = 0
			}
			for w := 0; w < n; w++ {
				mass := cur[w]
				if mass == 0 || w == u {
					continue
				}
				if e.invDeg[w] == 0 {
					next[w] += mass // stuck in place
					continue
				}
				row := e.g.Neighbors(w)
				if ws := e.g.NeighborWeights(w); ws != nil {
					inv := e.invDeg[w]
					for i2, x := range row {
						next[x] += mass * ws[i2] * inv
					}
				} else {
					share := mass * e.invDeg[w]
					for _, x := range row {
						next[x] += share
					}
				}
			}
			hitMass := next[u]
			expected += float64(t) * hitMass
			survive -= hitMass
			next[u] = 0 // absorb
			cur, next = next, cur
		}
		if survive < 0 {
			survive = 0
		}
		dst[u] = expected + survive*float64(e.l)
	}
	return dst, nil
}
