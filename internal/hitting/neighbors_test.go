package hitting

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestHitTimeMatrixConsistency(t *testing.T) {
	// Matrix entries must equal single-target DP results, diag must be 0.
	g := graph.PaperExample()
	e := mustEval(t, g, 4)
	h, err := e.HitTimeMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		col, _ := e.HitTimeToNode(v, nil)
		for u := 0; u < g.N(); u++ {
			if h[u][v] != col[u] {
				t.Fatalf("H[%d][%d] = %v, single-target %v", u, v, h[u][v], col[u])
			}
		}
		if h[v][v] != 0 {
			t.Fatalf("diagonal H[%d][%d] = %v", v, v, h[v][v])
		}
	}
}

func TestHitTimesFromSourceMatchesMatrix(t *testing.T) {
	// The row query must agree with the column DP on every entry.
	for _, gg := range []*graph.Graph{
		graph.PaperExample(),
		graph.MustFromEdgeList(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}),
	} {
		for _, L := range []int{1, 3, 5} {
			e := mustEval(t, gg, L)
			m, err := e.HitTimeMatrix()
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < gg.N(); s++ {
				row, err := e.HitTimesFromSource(s, nil)
				if err != nil {
					t.Fatal(err)
				}
				for u := 0; u < gg.N(); u++ {
					if math.Abs(row[u]-m[s][u]) > 1e-9 {
						t.Fatalf("L=%d: h[%d][%d]: row %v matrix %v", L, s, u, row[u], m[s][u])
					}
				}
			}
		}
	}
}

func TestHitTimesFromSourceIsolated(t *testing.T) {
	g := graph.MustFromEdgeList(3, [][2]int{{0, 1}}) // node 2 isolated
	e := mustEval(t, g, 4)
	row, err := e.HitTimesFromSource(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 4 || row[1] != 4 || row[2] != 0 {
		t.Fatalf("isolated source row %v, want [4 4 0]", row)
	}
	// Reaching an isolated target is impossible too.
	row, _ = e.HitTimesFromSource(0, nil)
	if row[2] != 4 {
		t.Fatalf("h[0][isolated] = %v, want L", row[2])
	}
}

func TestCommuteTimeSymmetric(t *testing.T) {
	g := graph.PaperExample()
	e := mustEval(t, g, 4)
	a, err := e.CommuteTime(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CommuteTime(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("commute time asymmetric: %v vs %v", a, b)
	}
	self, _ := e.CommuteTime(3, 3)
	if self != 0 {
		t.Fatalf("self commute time %v", self)
	}
	if _, err := e.CommuteTime(-1, 0); err == nil {
		t.Error("bad endpoint accepted")
	}
}

func TestCommuteTimeEqualsSumOfHittingTimes(t *testing.T) {
	g, _ := graph.BarabasiAlbert(30, 2, 5)
	e := mustEval(t, g, 5)
	m, _ := e.HitTimeMatrix()
	for _, pair := range [][2]int{{0, 7}, {3, 19}, {12, 4}} {
		u, v := pair[0], pair[1]
		c, err := e.CommuteTime(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if want := m[u][v] + m[v][u]; math.Abs(c-want) > 1e-9 {
			t.Fatalf("c(%d,%d) = %v, want %v", u, v, c, want)
		}
	}
}

func TestClosestByHittingTime(t *testing.T) {
	// On a star with target = hub, every leaf has hitting time exactly 1;
	// ties broken by id.
	g, _ := graph.Star(8)
	e := mustEval(t, g, 3)
	nb, err := e.ClosestByHittingTime(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 3 || nb[0].Node != 1 || nb[1].Node != 2 || nb[2].Node != 3 {
		t.Fatalf("closest to hub: %+v", nb)
	}
	for _, x := range nb {
		if x.Value != 1 {
			t.Fatalf("leaf hitting time %v, want 1", x.Value)
		}
	}
	// Path: closeness ordering follows distance.
	p, _ := graph.Path(6)
	ep := mustEval(t, p, 5)
	nb, _ = ep.ClosestByHittingTime(0, 2)
	if nb[0].Node != 1 {
		t.Fatalf("closest to end of path: %+v", nb)
	}
}

func TestClosestByCommuteTime(t *testing.T) {
	g, _ := graph.BarabasiAlbert(40, 2, 7)
	e := mustEval(t, g, 5)
	nb, err := e.ClosestByCommuteTime(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 5 {
		t.Fatalf("got %d neighbors", len(nb))
	}
	m, _ := e.HitTimeMatrix()
	for i, x := range nb {
		want := m[x.Node][0] + m[0][x.Node]
		if math.Abs(x.Value-want) > 1e-9 {
			t.Fatalf("neighbor %d: value %v, want %v", x.Node, x.Value, want)
		}
		if i > 0 && nb[i].Value < nb[i-1].Value {
			t.Fatal("neighbors not sorted")
		}
	}
}

func TestClosestValidation(t *testing.T) {
	g, _ := graph.Path(4)
	e := mustEval(t, g, 3)
	if _, err := e.ClosestByHittingTime(9, 1); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := e.ClosestByHittingTime(0, -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := e.ClosestByCommuteTime(-1, 1); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := e.ClosestByCommuteTime(0, -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := e.HitTimesFromSource(77, nil); err == nil {
		t.Error("bad source accepted")
	}
	// k > n−1 clamps.
	nb, err := e.ClosestByHittingTime(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 3 {
		t.Fatalf("clamped k gave %d neighbors", len(nb))
	}
}

func TestHitTimesFromSourceDirected(t *testing.T) {
	// Directed chain 0->1->2: from 0 everything is reachable at its
	// distance, from 2 nothing is.
	b := graph.NewBuilder(3, graph.Directed)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, _ := b.Build()
	e := mustEval(t, g, 4)
	row, _ := e.HitTimesFromSource(0, nil)
	if row[1] != 1 || row[2] != 2 {
		t.Fatalf("directed row from 0: %v", row)
	}
	row, _ = e.HitTimesFromSource(2, nil)
	if row[0] != 4 || row[1] != 4 {
		t.Fatalf("directed row from sink: %v, want L everywhere", row)
	}
}
