package hitting

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

const eps = 1e-12

func mustEval(t *testing.T, g *graph.Graph, L int) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(g, L)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNegativeLRejected(t *testing.T) {
	g := graph.MustFromEdgeList(2, [][2]int{{0, 1}})
	if _, err := NewEvaluator(g, -1); err == nil {
		t.Fatal("expected error for negative L")
	}
}

func TestSetMemberOutOfRange(t *testing.T) {
	g := graph.MustFromEdgeList(2, [][2]int{{0, 1}})
	e := mustEval(t, g, 3)
	if _, err := e.HitTimesToSet([]int{5}, nil); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := e.HitProbsToSet([]int{-1}, nil); err == nil {
		t.Fatal("expected range error")
	}
}

func TestTwoNodeHit(t *testing.T) {
	// 0-1: from 0 the walk deterministically steps to 1.
	g := graph.MustFromEdgeList(2, [][2]int{{0, 1}})
	for _, L := range []int{1, 2, 5} {
		e := mustEval(t, g, L)
		h, err := e.HitTimeToNode(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h[1] != 0 {
			t.Fatalf("L=%d: h[target] = %v, want 0", L, h[1])
		}
		if math.Abs(h[0]-1) > eps {
			t.Fatalf("L=%d: h[0] = %v, want 1", L, h[0])
		}
	}
}

func TestPathThreeHandComputed(t *testing.T) {
	// 0-1-2, S={2}, L=2. From 0: always 0->1->*, never hits within budget
	// except via cap: T=2 surely, h=2. From 1: hits at step 1 w.p. 1/2, else
	// capped at 2: h = 1.5.
	g := graph.MustFromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	e := mustEval(t, g, 2)
	h, err := e.HitTimesToSet([]int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[0]-2) > eps || math.Abs(h[1]-1.5) > eps || h[2] != 0 {
		t.Fatalf("h = %v, want [2 1.5 0]", h)
	}
	p, err := e.HitProbsToSet([]int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.5) > eps || math.Abs(p[1]-0.5) > eps || p[2] != 1 {
		t.Fatalf("p = %v, want [0.5 0.5 1]", p)
	}
}

func TestStarHub(t *testing.T) {
	// Star with hub 0: every leaf steps to the hub in exactly 1 hop.
	g, _ := graph.Star(10)
	e := mustEval(t, g, 4)
	h, err := e.HitTimesToSet([]int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u < 10; u++ {
		if math.Abs(h[u]-1) > eps {
			t.Fatalf("h[%d] = %v, want 1", u, h[u])
		}
	}
	p, _ := e.HitProbsToSet([]int{0}, nil)
	for u := 1; u < 10; u++ {
		if math.Abs(p[u]-1) > eps {
			t.Fatalf("p[%d] = %v, want 1", u, p[u])
		}
	}
}

func TestLZeroBoundary(t *testing.T) {
	// L=0: T^0 = 0 always, so h ≡ 0; p^0 is the indicator of S.
	g := graph.MustFromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	e := mustEval(t, g, 0)
	h, _ := e.HitTimesToSet([]int{1}, nil)
	for u, hu := range h {
		if hu != 0 {
			t.Fatalf("h[%d] = %v at L=0, want 0", u, hu)
		}
	}
	p, _ := e.HitProbsToSet([]int{1}, nil)
	want := []float64{0, 1, 0}
	for u := range p {
		if p[u] != want[u] {
			t.Fatalf("p = %v at L=0, want %v", p, want)
		}
	}
	f1, _ := e.F1([]int{1})
	if f1 != 0 {
		t.Fatalf("F1 = %v at L=0, want 0", f1)
	}
	f2, _ := e.F2([]int{1})
	if f2 != 1 {
		t.Fatalf("F2 = %v at L=0, want 1 (the member itself)", f2)
	}
}

func TestEmptySet(t *testing.T) {
	// S=∅: T^L = L for every node, so F1(∅) = 0 and F2(∅) = 0.
	g := graph.MustFromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	e := mustEval(t, g, 5)
	h, _ := e.HitTimesToSet(nil, nil)
	for u, hu := range h {
		if math.Abs(hu-5) > eps {
			t.Fatalf("h[%d] = %v with S=∅, want L=5", u, hu)
		}
	}
	f1, _ := e.F1(nil)
	if math.Abs(f1) > eps {
		t.Fatalf("F1(∅) = %v, want 0", f1)
	}
	f2, _ := e.F2(nil)
	if f2 != 0 {
		t.Fatalf("F2(∅) = %v, want 0", f2)
	}
}

func TestIsolatedNode(t *testing.T) {
	// Node 3 is isolated: it never reaches S, h = L and p = 0; if it is in
	// S, h = 0 and p = 1.
	g := graph.MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}})
	e := mustEval(t, g, 6)
	h, _ := e.HitTimesToSet([]int{0}, nil)
	if math.Abs(h[3]-6) > eps {
		t.Fatalf("isolated h = %v, want 6", h[3])
	}
	p, _ := e.HitProbsToSet([]int{0}, nil)
	if p[3] != 0 {
		t.Fatalf("isolated p = %v, want 0", p[3])
	}
	h, _ = e.HitTimesToSet([]int{3}, nil)
	if h[3] != 0 {
		t.Fatalf("isolated member h = %v, want 0", h[3])
	}
	// Connected nodes can never reach the isolated target.
	if math.Abs(h[0]-6) > eps {
		t.Fatalf("h[0] to isolated target = %v, want L", h[0])
	}
}

func TestHittingTimeBoundedByL(t *testing.T) {
	// Lemma 2.1: 0 <= h <= L, and 0 <= p <= 1, on random graphs and sets.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		m := r.Intn(n*(n-1)/2 + 1)
		g, err := graph.ErdosRenyi(n, m, seed)
		if err != nil {
			return false
		}
		L := r.Intn(8)
		S := []int{r.Intn(n)}
		if r.Intn(2) == 0 {
			S = append(S, r.Intn(n))
		}
		e, err := NewEvaluator(g, L)
		if err != nil {
			return false
		}
		h, err := e.HitTimesToSet(S, nil)
		if err != nil {
			return false
		}
		p, err := e.HitProbsToSet(S, nil)
		if err != nil {
			return false
		}
		for u := range h {
			if h[u] < -eps || h[u] > float64(L)+eps {
				return false
			}
			if p[u] < -eps || p[u] > 1+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// bruteForce enumerates every L-length walk on g (all degree^L branchings)
// and returns the exact expected hitting time and hit probability from src
// to S. Exponential; only for tiny graphs.
func bruteForce(g *graph.Graph, src int, S map[int]bool, L int) (h, p float64) {
	var rec func(u int, t int, prob float64)
	rec = func(u int, t int, prob float64) {
		if S[u] {
			h += prob * float64(t)
			p += prob
			return
		}
		if t == L {
			h += prob * float64(L)
			return
		}
		row := g.Neighbors(u)
		if len(row) == 0 {
			h += prob * float64(L)
			return
		}
		q := prob / float64(len(row))
		for _, v := range row {
			rec(int(v), t+1, q)
		}
	}
	rec(src, 0, 1)
	return h, p
}

func TestAgainstBruteForceEnumeration(t *testing.T) {
	// Exact DP must match full walk enumeration on small graphs.
	graphs := []*graph.Graph{
		graph.MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		graph.MustFromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}}),
		graph.PaperExample(),
	}
	sets := [][]int{{0}, {2}, {0, 3}, {1, 2}}
	for gi, g := range graphs {
		for _, L := range []int{1, 2, 3, 4} {
			e := mustEval(t, g, L)
			for _, S := range sets {
				setMap := map[int]bool{}
				for _, v := range S {
					setMap[v] = true
				}
				h, err := e.HitTimesToSet(S, nil)
				if err != nil {
					t.Fatal(err)
				}
				p, err := e.HitProbsToSet(S, nil)
				if err != nil {
					t.Fatal(err)
				}
				for u := 0; u < g.N(); u++ {
					wantH, wantP := bruteForce(g, u, setMap, L)
					if math.Abs(h[u]-wantH) > 1e-9 {
						t.Fatalf("graph %d L=%d S=%v u=%d: h=%v brute=%v", gi, L, S, u, h[u], wantH)
					}
					if math.Abs(p[u]-wantP) > 1e-9 {
						t.Fatalf("graph %d L=%d S=%v u=%d: p=%v brute=%v", gi, L, S, u, p[u], wantP)
					}
				}
			}
		}
	}
}

func TestWeightedTransitions(t *testing.T) {
	// 0-1 (w=3), 1-2 (w=1): from 1 the walk moves to 0 w.p. 3/4, to 2 w.p.
	// 1/4. With S={2}, L=1: p[1] = 1/4, h[1] = 3/4·1 + 1/4·1 = 1.
	b := graph.NewBuilder(3, graph.Undirected)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := mustEval(t, g, 1)
	p, _ := e.HitProbsToSet([]int{2}, nil)
	if math.Abs(p[1]-0.25) > eps {
		t.Fatalf("weighted p[1] = %v, want 0.25", p[1])
	}
	h, _ := e.HitTimesToSet([]int{2}, nil)
	if math.Abs(h[1]-1) > eps {
		t.Fatalf("weighted h[1] = %v, want 1", h[1])
	}
}

func TestDirectedHit(t *testing.T) {
	// 0 -> 1 -> 2 directed chain: from 0, S={2}, L=2: the walk must reach 2.
	b := graph.NewBuilder(3, graph.Directed)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := mustEval(t, g, 2)
	p, _ := e.HitProbsToSet([]int{2}, nil)
	if p[0] != 1 || p[1] != 1 {
		t.Fatalf("directed p = %v, want [1 1 1]", p)
	}
	// Reverse direction: 2 has no out-edges, never reaches 0.
	p, _ = e.HitProbsToSet([]int{0}, nil)
	if p[2] != 0 {
		t.Fatalf("sink node p = %v, want 0", p[2])
	}
	h, _ := e.HitTimesToSet([]int{0}, nil)
	if math.Abs(h[2]-2) > eps {
		t.Fatalf("sink node h = %v, want L", h[2])
	}
}

func TestMonotonicityProperty(t *testing.T) {
	// Eq. (14): S ⊆ T implies h_uT <= h_uS for all u, hence F1(S) <= F1(T)
	// and F2(S) <= F2(T).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(15)
		g, err := graph.BarabasiAlbert(n, 1+r.Intn(2), seed)
		if err != nil {
			return false
		}
		L := 1 + r.Intn(6)
		s1 := r.Intn(n)
		s2 := r.Intn(n)
		S := []int{s1}
		T := []int{s1, s2}
		e, err := NewEvaluator(g, L)
		if err != nil {
			return false
		}
		hS, _ := e.HitTimesToSet(S, nil)
		hT, _ := e.HitTimesToSet(T, make([]float64, n))
		for u := range hS {
			if hT[u] > hS[u]+1e-9 {
				return false
			}
		}
		f1S, _ := e.F1(S)
		f1T, _ := e.F1(T)
		f2S, _ := e.F2(S)
		f2T, _ := e.F2(T)
		return f1S <= f1T+1e-9 && f2S <= f2T+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmodularityProperty(t *testing.T) {
	// Theorems 3.1/3.2: marginal gains shrink as the base set grows:
	// F(S∪{j}) − F(S) >= F(T∪{j}) − F(T) for S ⊆ T, j ∉ T.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(12)
		g, err := graph.BarabasiAlbert(n, 1+r.Intn(2), seed)
		if err != nil {
			return false
		}
		L := 1 + r.Intn(5)
		perm := r.Perm(n)
		s1, s2, j := perm[0], perm[1], perm[2]
		S := []int{s1}
		T := []int{s1, s2}
		Sj := []int{s1, j}
		Tj := []int{s1, s2, j}
		e, err := NewEvaluator(g, L)
		if err != nil {
			return false
		}
		for _, obj := range []func([]int) (float64, error){e.F1, e.F2} {
			fS, _ := obj(S)
			fT, _ := obj(T)
			fSj, _ := obj(Sj)
			fTj, _ := obj(Tj)
			if (fSj-fS)+1e-9 < (fTj - fT) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestF1Formula(t *testing.T) {
	// F1(S) must equal nL − Σ_{u∉S} h_uS recomputed independently.
	g := graph.PaperExample()
	e := mustEval(t, g, 4)
	S := []int{1, 6}
	h, _ := e.HitTimesToSet(S, nil)
	want := float64(g.N()) * 4
	for u, hu := range h {
		if u != 1 && u != 6 {
			want -= hu
		}
	}
	got, _ := e.F1(S)
	if math.Abs(got-want) > eps {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
}

func TestAverageHittingTime(t *testing.T) {
	g, _ := graph.Star(5)
	e := mustEval(t, g, 3)
	aht, err := e.AverageHittingTime([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aht-1) > eps {
		t.Fatalf("AHT = %v, want 1 (all leaves hit hub in one hop)", aht)
	}
	// Full cover: AHT defined as 0.
	all := []int{0, 1, 2, 3, 4}
	aht, err = e.AverageHittingTime(all)
	if err != nil {
		t.Fatal(err)
	}
	if aht != 0 {
		t.Fatalf("AHT over full set = %v, want 0", aht)
	}
}

func TestHitProbMonotoneInL(t *testing.T) {
	// p^L_uS is nondecreasing in L: longer walks can only hit more.
	g, _ := graph.BarabasiAlbert(50, 2, 3)
	S := []int{0, 7}
	prev := make([]float64, g.N())
	for L := 0; L <= 8; L++ {
		e := mustEval(t, g, L)
		p, _ := e.HitProbsToSet(S, nil)
		for u := range p {
			if p[u]+1e-12 < prev[u] {
				t.Fatalf("p_u%d decreased from %v to %v at L=%d", u, prev[u], p[u], L)
			}
		}
		copy(prev, p)
	}
}

func TestBufferReuse(t *testing.T) {
	// Passing a dst buffer avoids allocation and returns the same backing.
	g, _ := graph.Path(10)
	e := mustEval(t, g, 3)
	buf := make([]float64, 10)
	out, err := e.HitTimesToSet([]int{0}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Fatal("dst buffer was not reused")
	}
}

func BenchmarkHitTimesToSet(b *testing.B) {
	g, _ := graph.BarabasiAlbert(1000, 5, 1)
	e, _ := NewEvaluator(g, 10)
	S := []int{1, 2, 3}
	buf := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HitTimesToSet(S, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF2(b *testing.B) {
	g, _ := graph.BarabasiAlbert(1000, 5, 1)
	e, _ := NewEvaluator(g, 10)
	S := []int{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.F2(S); err != nil {
			b.Fatal(err)
		}
	}
}
