package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hitting"
)

func TestCombinedEndpointsMatchSingleObjectives(t *testing.T) {
	// w=1 must reproduce ApproxF1's selection, w=0 ApproxF2's (same index
	// seed, same tie-breaks).
	g, _ := graph.BarabasiAlbert(100, 3, 5)
	opts := optsFor(5, 5, 100)
	f1, err := ApproxF1(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ApproxF2(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	cw1, err := Combined(g, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	cw0, err := Combined(g, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Nodes {
		if f1.Nodes[i] != cw1.Nodes[i] {
			t.Fatalf("Combined(w=1) %v != ApproxF1 %v", cw1.Nodes, f1.Nodes)
		}
		if f2.Nodes[i] != cw0.Nodes[i] {
			t.Fatalf("Combined(w=0) %v != ApproxF2 %v", cw0.Nodes, f2.Nodes)
		}
	}
}

func TestCombinedInterpolatesQuality(t *testing.T) {
	// A mid-weight combination should be competitive on both exact metrics:
	// no worse than the weaker endpoint on either objective.
	g, _ := graph.BarabasiAlbert(150, 3, 11)
	const L, k, R = 5, 8, 150
	opts := optsFor(k, L, R)
	mid, err := Combined(g, opts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f1sel, _ := ApproxF1(g, opts)
	f2sel, _ := ApproxF2(g, opts)
	ev, _ := hitting.NewEvaluator(g, L)
	midF1, _ := ev.F1(mid.Nodes)
	midF2, _ := ev.F2(mid.Nodes)
	loF1, _ := ev.F1(f2sel.Nodes) // F1 value of the F2-optimized set: weak end
	loF2, _ := ev.F2(f1sel.Nodes)
	if midF1 < loF1*0.98 {
		t.Errorf("Combined F1 value %v worse than F2-optimized set's %v", midF1, loF1)
	}
	if midF2 < loF2*0.98 {
		t.Errorf("Combined F2 value %v worse than F1-optimized set's %v", midF2, loF2)
	}
}

func TestCombinedValidation(t *testing.T) {
	g, _ := graph.Path(4)
	opts := optsFor(2, 3, 20)
	if _, err := Combined(g, opts, -0.1); err == nil {
		t.Error("w<0 accepted")
	}
	if _, err := Combined(g, opts, 1.1); err == nil {
		t.Error("w>1 accepted")
	}
	if _, err := Combined(g, Options{K: 2, L: 0, R: 20}, 0.5); err == nil {
		t.Error("L=0 accepted")
	}
}

func TestPartialCoverReachesTarget(t *testing.T) {
	g, _ := graph.BarabasiAlbert(200, 3, 3)
	opts := Options{L: 6, R: 100, Seed: 1}
	res, err := PartialCover(g, opts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved {
		t.Fatal("α=0.5 should be reachable on a connected power-law graph")
	}
	last := res.Coverage[len(res.Coverage)-1]
	if last < res.Target {
		t.Fatalf("final coverage %v below target %v", last, res.Target)
	}
	// Trajectory is nondecreasing and the run stops as soon as the target
	// is met (previous point below target).
	for i := 1; i < len(res.Coverage); i++ {
		if res.Coverage[i] < res.Coverage[i-1] {
			t.Fatal("coverage decreased")
		}
	}
	if len(res.Coverage) > 1 && res.Coverage[len(res.Coverage)-2] >= res.Target {
		t.Fatal("run continued past the target")
	}
	// Verify the estimate against the exact F2 of the selected set.
	ev, _ := hitting.NewEvaluator(g, opts.L)
	exact, _ := ev.F2(res.Nodes)
	if math.Abs(exact-last) > 0.1*float64(g.N()) {
		t.Fatalf("estimated coverage %v far from exact %v", last, exact)
	}
}

func TestPartialCoverMonotoneInAlpha(t *testing.T) {
	g, _ := graph.BarabasiAlbert(150, 3, 9)
	opts := Options{L: 5, R: 80, Seed: 2}
	prev := 0
	for _, alpha := range []float64{0.2, 0.4, 0.6, 0.8} {
		res, err := PartialCover(g, opts, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Achieved {
			t.Fatalf("α=%v unreachable", alpha)
		}
		if len(res.Nodes) < prev {
			t.Fatalf("higher α needed fewer nodes: %d < %d", len(res.Nodes), prev)
		}
		prev = len(res.Nodes)
	}
}

func TestPartialCoverUnreachable(t *testing.T) {
	// A graph of isolated nodes plus one edge: walks never leave their
	// component, so full coverage needs nearly all nodes; with α=1 the run
	// must still terminate and report achievement correctly.
	b := graph.NewBuilder(6, graph.Undirected)
	b.AddEdge(0, 1)
	g, _ := b.Build()
	res, err := PartialCover(g, Options{L: 3, R: 30, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved {
		// Achievable by selecting everything; greedy will do so.
		t.Fatalf("full cover by selecting all nodes should be achieved, got %d nodes", len(res.Nodes))
	}
	if len(res.Nodes) < 5 {
		t.Fatalf("isolated nodes force nearly all selections, got %d", len(res.Nodes))
	}
}

func TestPartialCoverValidation(t *testing.T) {
	g, _ := graph.Path(4)
	if _, err := PartialCover(g, Options{L: 3, R: 20}, -0.5); err == nil {
		t.Error("negative α accepted")
	}
	if _, err := PartialCover(g, Options{L: 3, R: 20}, 1.5); err == nil {
		t.Error("α>1 accepted")
	}
	if _, err := PartialCover(g, Options{L: 3, R: 0}, 0.5); err == nil {
		t.Error("R=0 accepted")
	}
}

func TestEdgeDominationBasics(t *testing.T) {
	g, _ := graph.Star(10)
	// Hub as target: every walk traverses exactly its first edge, then hits.
	v, err := EdgeDomination(g, []int{0}, 5, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 9.0 // 9 leaves × 1 edge each
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("star hub edge domination %v, want %v", v, want)
	}
	// Empty target: walks run to exhaustion and traverse more edges.
	v2, err := EdgeDomination(g, nil, 5, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v {
		t.Fatalf("untargeted traversal %v should exceed targeted %v", v2, v)
	}
}

func TestEdgeDominationMonotone(t *testing.T) {
	// Adding targets can only reduce expected pre-hit edge traversal (in
	// expectation; allow small sampling slack).
	g, _ := graph.BarabasiAlbert(80, 3, 6)
	a, _ := EdgeDomination(g, []int{0}, 6, 300, 9)
	b, _ := EdgeDomination(g, []int{0, 1, 2}, 6, 300, 9)
	if b > a+0.5 {
		t.Fatalf("more targets increased traversal: %v -> %v", a, b)
	}
}

func TestEdgeDominationValidation(t *testing.T) {
	g, _ := graph.Path(3)
	if _, err := EdgeDomination(nil, nil, 2, 5, 0); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := EdgeDomination(g, nil, -1, 5, 0); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := EdgeDomination(g, nil, 2, 0, 0); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := EdgeDomination(g, []int{7}, 2, 5, 0); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestGreedyEdgeDomination(t *testing.T) {
	// On a star the hub minimizes pre-hit edge traversal.
	g, _ := graph.Star(12)
	sel, err := GreedyEdgeDomination(g, Options{K: 1, L: 4, R: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Nodes[0] != 0 {
		t.Fatalf("selected %v, want hub 0", sel.Nodes)
	}
}
