package core

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// TestAdaptiveEarlyStopsOnEasyGraph pins the speed half of the adaptive
// contract: on a graph with a decisive hub, the separation interval closes
// well below the R cap, every committed round reports CI ≤ ε, and the
// selected set matches the fixed-R selection (the leader is clear, so fewer
// replicates pick the same nodes).
func TestAdaptiveEarlyStopsOnEasyGraph(t *testing.T) {
	// A star with a few spokes joined: node 0 dominates every walk source.
	g, err := graph.BarabasiAlbert(400, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 3, L: 6, R: 200, Seed: 7}
	// ε is an absolute half-width in gain units, so it calibrates per
	// problem: F1 separations are L× larger than F2's. Both targets sit well
	// above the interval this instance achieves at the full R=200
	// (≈69 for F1, ≈14.5 for F2), so the rule must close early.
	epsFor := map[index.Problem]float64{index.Problem1: 120, index.Problem2: 25}
	for _, p := range []index.Problem{index.Problem1, index.Problem2} {
		acc := Accuracy{Epsilon: epsFor[p], Delta: 0.05, Chunk: 25}
		sel, err := ApproxAdaptiveStream(context.Background(), g, p, opts, acc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sel.EarlyStopped || sel.ReplicatesUsed >= opts.R {
			t.Fatalf("%v: used %d/%d replicates, expected early stop", p, sel.ReplicatesUsed, opts.R)
		}
		if sel.MaxCIWidth > acc.Epsilon {
			t.Fatalf("%v: MaxCIWidth %v exceeds epsilon %v despite early stop", p, sel.MaxCIWidth, acc.Epsilon)
		}
		if len(sel.Nodes) != opts.K || len(sel.Rounds) != opts.K {
			t.Fatalf("%v: %d nodes / %d rounds, want %d", p, len(sel.Nodes), len(sel.Rounds), opts.K)
		}
		for i, rd := range sel.Rounds {
			if rd.CIWidth > acc.Epsilon || rd.Replicates > sel.ReplicatesUsed {
				t.Fatalf("%v: round %d CI %v replicates %d inconsistent", p, i, rd.CIWidth, rd.Replicates)
			}
		}
	}
}

// TestAdaptiveCapsAtROnHardTarget pins the accuracy half: with an
// unreachable ε the run spends the whole budget, reports EarlyStopped =
// false, and its selection is bit-identical to the plain fixed-R greedy at
// the same parameters — the cap degrades to today's behavior plus error
// bars.
func TestAdaptiveCapsAtROnHardTarget(t *testing.T) {
	g, err := graph.BarabasiAlbert(200, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 4, L: 5, R: 40, Seed: 13}
	for _, p := range []index.Problem{index.Problem1, index.Problem2} {
		acc := Accuracy{Epsilon: 1e-12, Delta: 0.1, Chunk: 16}
		sel, err := ApproxAdaptiveStream(context.Background(), g, p, opts, acc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sel.EarlyStopped || sel.ReplicatesUsed != opts.R {
			t.Fatalf("%v: used %d replicates, want full cap %d", p, sel.ReplicatesUsed, opts.R)
		}
		if sel.MaxCIWidth <= 0 {
			t.Fatalf("%v: capped run must report its achieved CI, got %v", p, sel.MaxCIWidth)
		}
		fixed, err := approxGreedy(g, Options{K: opts.K, L: opts.L, R: opts.R, Seed: opts.Seed}, "ref", p)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.Nodes) != len(fixed.Nodes) {
			t.Fatalf("%v: %d nodes vs fixed %d", p, len(sel.Nodes), len(fixed.Nodes))
		}
		for i := range sel.Nodes {
			if sel.Nodes[i] != fixed.Nodes[i] || sel.Gains[i] != fixed.Gains[i] {
				t.Fatalf("%v: capped adaptive diverges from fixed-R at round %d: node %d/%d gain %v/%v",
					p, i, sel.Nodes[i], fixed.Nodes[i], sel.Gains[i], fixed.Gains[i])
			}
		}
	}
}

// TestAdaptiveDeterministicAcrossWorkers pins bit-reproducibility of the
// adaptive path: nodes, gains, replicate schedule and CI widths are
// identical at every worker count.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	g, err := graph.BarabasiAlbert(150, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Epsilon: 0.5, Delta: 0.05, Chunk: 10}
	var ref *BudgetSelection
	for _, workers := range []int{1, 2, 4} {
		opts := Options{K: 5, L: 4, R: 80, Seed: 23, Workers: workers}
		sel, err := ApproxAdaptiveStream(context.Background(), g, index.Problem2, opts, acc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = sel
			continue
		}
		if sel.ReplicatesUsed != ref.ReplicatesUsed || sel.ChunksBuilt != ref.ChunksBuilt {
			t.Fatalf("workers=%d: schedule %d/%d, want %d/%d", workers, sel.ReplicatesUsed, sel.ChunksBuilt, ref.ReplicatesUsed, ref.ChunksBuilt)
		}
		for i := range ref.Nodes {
			if sel.Nodes[i] != ref.Nodes[i] || sel.Gains[i] != ref.Gains[i] || sel.Rounds[i] != ref.Rounds[i] {
				t.Fatalf("workers=%d: round %d diverges", workers, i)
			}
		}
	}
}

// TestAdaptiveStreamObserver pins the streamed rounds: one BudgetPick per
// committed node, totals telescoping, and observer errors aborting the run.
func TestAdaptiveStreamObserver(t *testing.T) {
	g, err := graph.BarabasiAlbert(100, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 3, L: 4, R: 30, Seed: 1}
	acc := Accuracy{Epsilon: 2, Delta: 0.05, Chunk: 10}
	var picks []BudgetPick
	sel, err := ApproxAdaptiveStream(context.Background(), g, index.Problem2, opts, acc, func(bp BudgetPick) error {
		picks = append(picks, bp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != len(sel.Nodes) {
		t.Fatalf("%d picks for %d nodes", len(picks), len(sel.Nodes))
	}
	total := 0.0
	for i, bp := range picks {
		total += bp.Gain
		if bp.Round != i+1 || bp.Node != sel.Nodes[i] || bp.Total != total {
			t.Fatalf("pick %d inconsistent: %+v", i, bp)
		}
		if bp.CIWidth != sel.Rounds[i].CIWidth || bp.Replicates != sel.Rounds[i].Replicates {
			t.Fatalf("pick %d CI fields diverge from Rounds", i)
		}
	}
	wantErr := context.Canceled
	_, err = ApproxAdaptiveStream(context.Background(), g, index.Problem2, opts, acc, func(BudgetPick) error {
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("observer error not propagated: %v", err)
	}
}

// TestAdaptiveValidation pins the knob contract.
func TestAdaptiveValidation(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 2, 1)
	opts := Options{K: 2, L: 3, R: 10, Seed: 1}
	bad := []Accuracy{
		{Epsilon: 0, Delta: 0.05},
		{Epsilon: -1, Delta: 0.05},
		{Epsilon: 0.5, Delta: 0},
		{Epsilon: 0.5, Delta: 1},
		{Epsilon: 0.5, Delta: 0.05, Chunk: -1},
	}
	for _, acc := range bad {
		if _, err := ApproxAdaptiveStream(context.Background(), g, index.Problem2, opts, acc, nil); err == nil {
			t.Fatalf("accuracy %+v accepted", acc)
		}
	}
}
