package core

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/index"
)

// This file exports the top-B marginal-gain sweep the query-serving daemon
// uses for GET /v1/topgains: evaluate Gain for every candidate against a
// D-table's current set (a pure read, sharded over workers) and keep the B
// best. It lives in core next to the greedy drivers because it is exactly
// one round of the plain greedy sweep, generalized from argmax to arg-top-B.

// topGainsStride bounds how many candidates a worker evaluates between
// context checks, so cancellation latency stays bounded on large graphs.
const topGainsStride = 1024

// TopGains returns the b candidates with the largest marginal gains against
// d's current set, excluding nodes marked in exclude (which may be nil, and
// is indexed by node id). Gain evaluation is sharded over workers goroutines
// (0 means all cores); results are ordered by gain descending with ties
// broken by ascending node id, and are bit-for-bit identical for every
// worker count because gains are integer accumulations and the selection
// rule is a total order.
//
// Gain reads the D-table without mutating it, so concurrent TopGains calls
// over one (frozen) table are safe — the property the daemon's memoized
// read path relies on.
func TopGains(ctx context.Context, d *index.DTable, b int, exclude []bool, workers int) ([]int, []float64, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("core: TopGains of nil D-table")
	}
	if b < 0 {
		return nil, nil, fmt.Errorf("core: negative top-gain budget %d", b)
	}
	n := d.Index().Graph().N()
	if exclude != nil && len(exclude) != n {
		return nil, nil, fmt.Errorf("core: exclude mask has %d entries for %d nodes", len(exclude), n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	gains := make([]float64, n)
	if workers <= 1 {
		us := make([]int, 0, topGainsStride)
		for lo := 0; lo < n; lo += topGainsStride {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			hi := lo + topGainsStride
			if hi > n {
				hi = n
			}
			us = us[:0]
			for u := lo; u < hi; u++ {
				us = append(us, u)
			}
			d.GainBatch(us, gains[lo:lo])
		}
	} else {
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				us := make([]int, 0, topGainsStride)
				for c := lo; c < hi; c += topGainsStride {
					if ctx.Err() != nil {
						return
					}
					ch := c + topGainsStride
					if ch > hi {
						ch = hi
					}
					us = us[:0]
					for u := c; u < ch; u++ {
						us = append(us, u)
					}
					d.GainBatch(us, gains[c:c])
				}
			}(lo, hi)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	nodes, top := TopOfGains(gains, exclude, b)
	return nodes, top, nil
}

// TopGainSums is TopGains in the integer domain: it returns the b candidates
// with the largest integer gain sums (Gain before the division by R) against
// d's current set, ordered by sum descending with ties broken by ascending
// node id. It is the shard-side half of distributed top-B: a replicate-range
// shard reports its local top candidates as exact int64 partial sums, which
// the coordinator merges by addition and only then divides — so the merged
// ranking is computed from the same float64 values the unsharded sweep sees.
func TopGainSums(ctx context.Context, d *index.DTable, b int, exclude []bool, workers int) ([]int, []int64, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("core: TopGainSums of nil D-table")
	}
	if b < 0 {
		return nil, nil, fmt.Errorf("core: negative top-gain budget %d", b)
	}
	n := d.Index().Graph().N()
	if exclude != nil && len(exclude) != n {
		return nil, nil, fmt.Errorf("core: exclude mask has %d entries for %d nodes", len(exclude), n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	sums := make([]int64, n)
	if workers <= 1 {
		us := make([]int, 0, topGainsStride)
		for lo := 0; lo < n; lo += topGainsStride {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			hi := lo + topGainsStride
			if hi > n {
				hi = n
			}
			us = us[:0]
			for u := lo; u < hi; u++ {
				us = append(us, u)
			}
			d.GainSumBatch(us, sums[lo:lo])
		}
	} else {
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				us := make([]int, 0, topGainsStride)
				for c := lo; c < hi; c += topGainsStride {
					if ctx.Err() != nil {
						return
					}
					ch := c + topGainsStride
					if ch > hi {
						ch = hi
					}
					us = us[:0]
					for u := c; u < ch; u++ {
						us = append(us, u)
					}
					d.GainSumBatch(us, sums[c:c])
				}
			}(lo, hi)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	nodes, top := TopOfSums(sums, exclude, b)
	return nodes, top, nil
}

// topItem pairs a candidate with its gain inside the selection heap.
type topItem struct {
	u    int32
	gain float64
}

// topHeap is a min-heap under the (gain descending, id ascending) selection
// order: the root is the currently weakest kept candidate, i.e. the one a
// better candidate displaces. "Weaker" means smaller gain, or equal gain
// with a larger id.
type topHeap []topItem

func (h topHeap) Len() int { return len(h) }
func (h topHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain < h[j].gain
	}
	return h[i].u > h[j].u
}
func (h topHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *topHeap) Push(x any)   { *h = append(*h, x.(topItem)) }
func (h *topHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (h topHeap) beats(it topItem) bool {
	root := h[0]
	if it.gain != root.gain {
		return it.gain > root.gain
	}
	return it.u < root.u
}

// sumItem and sumHeap mirror topItem/topHeap in the integer domain, under
// the same (value descending, id ascending) selection order.
type sumItem struct {
	u   int32
	sum int64
}

type sumHeap []sumItem

func (h sumHeap) Len() int { return len(h) }
func (h sumHeap) Less(i, j int) bool {
	if h[i].sum != h[j].sum {
		return h[i].sum < h[j].sum
	}
	return h[i].u > h[j].u
}
func (h sumHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sumHeap) Push(x any)   { *h = append(*h, x.(sumItem)) }
func (h *sumHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (h sumHeap) beats(it sumItem) bool {
	root := h[0]
	if it.sum != root.sum {
		return it.sum > root.sum
	}
	return it.u < root.u
}

// TopOfSums selects the top b entries of a precomputed integer-sum vector
// (indexed by node id), excluding nodes marked in exclude (may be nil), in
// O(n log b): sum descending, ties by ascending node id — the selection half
// of TopGainSums.
func TopOfSums(sums []int64, exclude []bool, b int) ([]int, []int64) {
	if b > len(sums) {
		b = len(sums)
	}
	if b <= 0 {
		return []int{}, []int64{}
	}
	h := make(sumHeap, 0, b)
	for u, s := range sums {
		if exclude != nil && exclude[u] {
			continue
		}
		it := sumItem{u: int32(u), sum: s}
		if len(h) < b {
			heap.Push(&h, it)
			continue
		}
		if h.beats(it) {
			h[0] = it
			heap.Fix(&h, 0)
		}
	}
	nodes := make([]int, len(h))
	top := make([]int64, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		it := heap.Pop(&h).(sumItem)
		nodes[i] = int(it.u)
		top[i] = it.sum
	}
	return nodes, top
}

// TopOfGains selects the top b entries of a precomputed gains vector
// (indexed by node id), excluding nodes marked in exclude (may be nil), in
// O(n log b): gain descending, ties by ascending node id. It is the
// selection half of TopGains, exposed separately so the empty-set serving
// path can rank the index's memoized empty-set gain vector without copying
// it into a D-table.
func TopOfGains(gains []float64, exclude []bool, b int) ([]int, []float64) {
	if b > len(gains) {
		b = len(gains)
	}
	if b <= 0 {
		return []int{}, []float64{}
	}
	h := make(topHeap, 0, b)
	for u, g := range gains {
		if exclude != nil && exclude[u] {
			continue
		}
		it := topItem{u: int32(u), gain: g}
		if len(h) < b {
			heap.Push(&h, it)
			continue
		}
		if h.beats(it) {
			h[0] = it
			heap.Fix(&h, 0)
		}
	}
	nodes := make([]int, len(h))
	top := make([]float64, len(h))
	// Pop ascending (weakest first) and fill backwards for the descending
	// result order.
	for i := len(h) - 1; i >= 0; i-- {
		it := heap.Pop(&h).(topItem)
		nodes[i] = int(it.u)
		top[i] = it.gain
	}
	return nodes, top
}
