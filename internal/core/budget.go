package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
)

// Adaptive replicate budgets. The paper's ε guarantee sizes the fixed sample
// count R for the worst case, so easy graphs pay full price and hard graphs
// get silent noise. The adaptive driver instead materializes the index in
// replicate chunks (index.BuildChunkedWorkers) and, each greedy round, bounds
// the separation between the leading candidate and the runner-up with a
// confidence interval over the per-replicate gain samples: when the interval
// half-width is at most ε at per-round confidence δ/k (union bound over the
// k rounds), the leader is committed with the replicates materialized so
// far; otherwise one more chunk is built and attached (ExtendReplicates +
// SyncChunks) and the round re-sweeps, capped at R. Easy instances finish
// with a fraction of R; hard instances spend the full budget and report
// their achieved interval instead of failing silently.
//
// The driver is deterministic: chunk contents are fixed by per-walk seeding,
// sweeps and interval arithmetic are pure functions of them, so selections
// and reported intervals are bit-for-bit identical at every worker count.

// Accuracy configures the adaptive stopping rule.
type Accuracy struct {
	// Epsilon is the target half-width of the per-round separation
	// confidence interval, in objective units (a per-replicate gain
	// average). Must be > 0 to enable the adaptive driver.
	Epsilon float64
	// Delta is the confidence parameter: each round's interval holds with
	// probability at least 1 − Delta/k. Must be in (0, 1).
	Delta float64
	// Chunk is the replicate-chunk width built per extension step; 0 means
	// ceil(R/8). Values above R are clamped to R.
	Chunk int
}

func (a Accuracy) validate() error {
	if a.Epsilon <= 0 || math.IsInf(a.Epsilon, 0) || math.IsNaN(a.Epsilon) {
		return fmt.Errorf("core: accuracy epsilon %v, want > 0", a.Epsilon)
	}
	if !(a.Delta > 0 && a.Delta < 1) {
		return fmt.Errorf("core: accuracy delta %v, want in (0, 1)", a.Delta)
	}
	if a.Chunk < 0 {
		return fmt.Errorf("core: accuracy chunk %d, want >= 0", a.Chunk)
	}
	return nil
}

// BudgetPick is one committed adaptive round: the Pick plus the round's
// separation-interval half-width and the replicates materialized when the
// leader was committed.
type BudgetPick struct {
	Pick
	CIWidth    float64
	Replicates int
}

// BudgetSelection is a Selection annotated with the adaptive run's accuracy
// evidence.
type BudgetSelection struct {
	Selection
	// ReplicatesUsed is the final materialized replicate width (≤ R).
	ReplicatesUsed int
	// ChunksBuilt counts index chunks materialized, including the first.
	ChunksBuilt int
	// EarlyStopped reports whether the run finished below the R cap.
	EarlyStopped bool
	// MaxCIWidth is the largest per-round separation half-width among the
	// committed rounds — the weakest of the per-round guarantees, so
	// MaxCIWidth ≤ ε certifies every round met the target.
	MaxCIWidth float64
	// Rounds holds each round's half-width and committed replicate count,
	// parallel to Selection.Nodes.
	Rounds []BudgetRound
}

// BudgetRound is the per-round accuracy record of a BudgetSelection.
type BudgetRound struct {
	CIWidth    float64
	Replicates int
}

// ApproxAdaptiveStream runs the approximate greedy algorithm under an
// adaptive replicate budget: opts.R is the cap, acc the stopping rule, and
// onPick (may be nil) observes each committed round. opts.Lazy is ignored —
// the adaptive loop re-sweeps all candidates each round because CELF bounds
// recorded at one replicate width are invalid after the width grows.
func ApproxAdaptiveStream(ctx context.Context, g *graph.Graph, p index.Problem, opts Options, acc Accuracy, onPick func(BudgetPick) error) (*BudgetSelection, error) {
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	if err := acc.validate(); err != nil {
		return nil, err
	}
	if p != index.Problem1 && p != index.Problem2 {
		return nil, fmt.Errorf("core: unknown problem %d", int(p))
	}
	workers := opts.workers()
	n := g.N()
	k := opts.K
	if k > n {
		k = n
	}
	chunk := acc.Chunk
	if chunk == 0 {
		chunk = (opts.R + 7) / 8
	}
	if chunk > opts.R {
		chunk = opts.R
	}
	// δ is split evenly over the rounds (union bound), so the k per-round
	// intervals hold jointly with probability ≥ 1 − δ.
	deltaRound := acc.Delta
	if k > 1 {
		deltaRound = acc.Delta / float64(k)
	}

	start := time.Now()
	// Materialize only the first chunk up front; rounds extend on demand.
	ix, err := index.BuildChunkedRangeWorkers(g, opts.L, opts.Seed, 0, chunk, chunk, workers)
	if err != nil {
		return nil, err
	}
	d, err := ix.NewDTable(p)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(start)
	chunksBuilt := 1

	sel := &BudgetSelection{}
	members := make([]bool, n)
	var total float64
	var sampA, sampB []int64
	selStart := time.Now()
	for round := 0; round < k; round++ {
		var committed bool
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			nodes, sums, err := TopGainSums(ctx, d, 2, members, workers)
			if err != nil {
				return nil, err
			}
			sel.Evaluations += n - round
			if len(nodes) == 0 {
				break
			}
			m := ix.R()
			hw := 0.0
			if len(nodes) > 1 {
				sampA = d.AppendReplicateGainSums(nodes[0], sampA[:0])
				sampB = d.AppendReplicateGainSums(nodes[1], sampB[:0])
				hw = separationHalfWidth(sampA, sampB, gainRangeBound(ix, p, nodes[0], nodes[1]), deltaRound)
			}
			if hw <= acc.Epsilon || m >= opts.R {
				gain := float64(sums[0]) / float64(m)
				total += gain
				u := nodes[0]
				d.Update(u)
				members[u] = true
				sel.Nodes = append(sel.Nodes, u)
				sel.Gains = append(sel.Gains, gain)
				sel.Rounds = append(sel.Rounds, BudgetRound{CIWidth: hw, Replicates: m})
				if hw > sel.MaxCIWidth {
					sel.MaxCIWidth = hw
				}
				if onPick != nil {
					if err := onPick(BudgetPick{
						Pick:       Pick{Round: round + 1, Node: u, Gain: gain, Total: total},
						CIWidth:    hw,
						Replicates: m,
					}); err != nil {
						return nil, err
					}
				}
				committed = true
				break
			}
			grow := chunk
			if m+grow > opts.R {
				grow = opts.R - m
			}
			bt := time.Now()
			if err := ix.ExtendReplicates(grow, workers); err != nil {
				return nil, err
			}
			buildTime += time.Since(bt)
			if err := d.SyncChunks(); err != nil {
				return nil, err
			}
			chunksBuilt++
		}
		if !committed {
			break
		}
	}
	sel.Algorithm = "AdaptiveF1"
	if p == index.Problem2 {
		sel.Algorithm = "AdaptiveF2"
	}
	sel.BuildTime = buildTime
	sel.SelectTime = time.Since(selStart)
	sel.ReplicatesUsed = ix.R()
	sel.ChunksBuilt = chunksBuilt
	sel.EarlyStopped = ix.R() < opts.R
	return sel, nil
}

// gainRangeBound bounds the range of one replicate's gain separation between
// candidates a and b: each candidate's per-replicate gain lies in [0, B(u)],
// where B(u) follows from u's densest index row — for Problem 2 a replicate
// contributes at most 1 (u's own walk) plus one per row entry; for Problem 1
// at most L (u's own hitting time) plus L−1 improvement per row entry. The
// difference therefore spans at most B(a) + B(b).
func gainRangeBound(ix *index.Index, p index.Problem, a, b int) float64 {
	bound := func(u int) float64 {
		rowLen := float64(ix.MaxRowLen(u))
		if p == index.Problem1 {
			l := float64(ix.L())
			improve := l - 1
			if improve < 0 {
				improve = 0
			}
			return l + rowLen*improve
		}
		return 1 + rowLen
	}
	return bound(a) + bound(b)
}

// separationHalfWidth bounds |empirical mean − true mean| of the
// per-replicate separation Y_i = gain_i(a) − gain_i(b) at confidence 1 − δ,
// taking the smaller of two two-sided bounds over m samples of range width w:
//
//   - Hoeffding: w·sqrt(ln(2/δ) / 2m) — tight when the separation is
//     high-variance or m is tiny;
//   - empirical Bernstein (Audibert–Munos–Szepesvári):
//     sqrt(2·V̂·ln(3/δ)/m) + 3·w·ln(3/δ)/m with V̂ the empirical variance —
//     far tighter once the observed variance is small, which is the common
//     case for a clear leader.
//
// The computation is pure float64 arithmetic over integer samples, so it is
// bit-reproducible at every worker count.
func separationHalfWidth(sampA, sampB []int64, w, delta float64) float64 {
	m := len(sampA)
	if m == 0 || w <= 0 {
		return 0
	}
	fm := float64(m)
	var sum int64
	for i := range sampA {
		sum += sampA[i] - sampB[i]
	}
	mean := float64(sum) / fm
	variance := 0.0
	for i := range sampA {
		dev := float64(sampA[i]-sampB[i]) - mean
		variance += dev * dev
	}
	variance /= fm
	hoeffding := w * math.Sqrt(math.Log(2/delta)/(2*fm))
	bernstein := math.Sqrt(2*variance*math.Log(3/delta)/fm) + 3*w*math.Log(3/delta)/fm
	return math.Min(hoeffding, bernstein)
}
