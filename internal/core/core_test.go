package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/index"
)

func buildIndexForTest(g *graph.Graph, opts Options) (*index.Index, error) {
	return index.Build(g, opts.L, opts.R, opts.Seed)
}

func optsFor(k, L, R int) Options {
	return Options{K: k, L: L, R: R, Seed: 42}
}

func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.BarabasiAlbert(120, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDPF1SelectsHubOnStar(t *testing.T) {
	// On a star, the hub is unambiguously the best single target for both
	// problems: every leaf hits it in one hop.
	g, _ := graph.Star(20)
	for _, algo := range []func(*graph.Graph, Options) (*Selection, error){DPF1, DPF2} {
		sel, err := algo(g, optsFor(1, 4, 0))
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.Nodes) != 1 || sel.Nodes[0] != 0 {
			t.Fatalf("%s selected %v, want [0]", sel.Algorithm, sel.Nodes)
		}
	}
}

func TestApproxSelectsHubOnStar(t *testing.T) {
	g, _ := graph.Star(20)
	for _, algo := range []func(*graph.Graph, Options) (*Selection, error){ApproxF1, ApproxF2} {
		sel, err := algo(g, optsFor(1, 4, 50))
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.Nodes) != 1 || sel.Nodes[0] != 0 {
			t.Fatalf("%s selected %v, want [0]", sel.Algorithm, sel.Nodes)
		}
	}
}

func TestDPF1ObjectiveMatchesEvaluator(t *testing.T) {
	// The telescoped gains must equal the exact objective of the final set.
	g := smallGraph(t)
	const L = 5
	sel, err := DPF1(g, optsFor(6, L, 0))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	exact, _ := ev.F1(sel.Nodes)
	if math.Abs(sel.Objective()-exact) > 1e-6 {
		t.Fatalf("telescoped objective %v != exact F1 %v", sel.Objective(), exact)
	}
}

func TestDPF2ObjectiveMatchesEvaluator(t *testing.T) {
	g := smallGraph(t)
	const L = 5
	sel, err := DPF2(g, optsFor(6, L, 0))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	exact, _ := ev.F2(sel.Nodes)
	if math.Abs(sel.Objective()-exact) > 1e-6 {
		t.Fatalf("telescoped objective %v != exact F2 %v", sel.Objective(), exact)
	}
}

func TestLazyDPMatchesPlainDP(t *testing.T) {
	// CELF is exact for the DP oracle (true submodular gains), so both
	// drivers must return identical selections under identical tie-breaks.
	g := smallGraph(t)
	opts := optsFor(5, 4, 0)
	plain, err := DPF1(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Lazy = true
	lazy, err := DPF1(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Nodes) != len(lazy.Nodes) {
		t.Fatalf("lengths differ: %v vs %v", plain.Nodes, lazy.Nodes)
	}
	for i := range plain.Nodes {
		if plain.Nodes[i] != lazy.Nodes[i] {
			t.Fatalf("selections differ: %v vs %v", plain.Nodes, lazy.Nodes)
		}
	}
	if lazy.Evaluations >= plain.Evaluations {
		t.Fatalf("lazy evaluations %d not fewer than plain %d", lazy.Evaluations, plain.Evaluations)
	}
}

func TestLazyApproxMatchesPlainApprox(t *testing.T) {
	// The index oracle's gains are submodular sample-by-sample, so CELF is
	// exact for the approximate algorithm too: identical selections, fewer
	// evaluations.
	g := smallGraph(t)
	opts := optsFor(8, 5, 120)
	plain, err := ApproxF1(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	lazyOpts := opts
	lazyOpts.Lazy = true
	lazy, err := ApproxF1(g, lazyOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Nodes {
		if plain.Nodes[i] != lazy.Nodes[i] {
			t.Fatalf("selections differ: %v vs %v", plain.Nodes, lazy.Nodes)
		}
	}
	if lazy.Evaluations >= plain.Evaluations {
		t.Fatalf("lazy evals %d not fewer than plain %d", lazy.Evaluations, plain.Evaluations)
	}
}

// approxQuality asserts the paper's central effectiveness claim (Figs 2, 3):
// the approximate greedy solution's exact objective value is within a few
// percent of the DP greedy solution's.
func TestApproxF1TracksDPF1(t *testing.T) {
	g := smallGraph(t)
	const L, k = 5, 8
	dp, err := DPF1(g, optsFor(k, L, 0))
	if err != nil {
		t.Fatal(err)
	}
	ap, err := ApproxF1(g, optsFor(k, L, 200))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	dpVal, _ := ev.F1(dp.Nodes)
	apVal, _ := ev.F1(ap.Nodes)
	if apVal < 0.93*dpVal {
		t.Fatalf("ApproxF1 exact value %v below 93%% of DPF1 value %v", apVal, dpVal)
	}
}

func TestApproxF2TracksDPF2(t *testing.T) {
	g := smallGraph(t)
	const L, k = 5, 8
	dp, err := DPF2(g, optsFor(k, L, 0))
	if err != nil {
		t.Fatal(err)
	}
	ap, err := ApproxF2(g, optsFor(k, L, 200))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	dpVal, _ := ev.F2(dp.Nodes)
	apVal, _ := ev.F2(ap.Nodes)
	if apVal < 0.93*dpVal {
		t.Fatalf("ApproxF2 exact value %v below 93%% of DPF2 value %v", apVal, dpVal)
	}
}

func TestSampleGreedyTracksDP(t *testing.T) {
	// The intermediate sampling-based greedy should also track DP closely.
	g, _ := graph.BarabasiAlbert(60, 2, 9)
	const L, k = 4, 4
	dp, err := DPF1(g, optsFor(k, L, 0))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SampleF1(g, optsFor(k, L, 120))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	dpVal, _ := ev.F1(dp.Nodes)
	spVal, _ := ev.F1(sp.Nodes)
	if spVal < 0.9*dpVal {
		t.Fatalf("SampleF1 exact value %v below 90%% of DPF1 value %v", spVal, dpVal)
	}
	sp2, err := SampleF2(g, optsFor(k, L, 120))
	if err != nil {
		t.Fatal(err)
	}
	dp2, err := DPF2(g, optsFor(k, L, 0))
	if err != nil {
		t.Fatal(err)
	}
	dp2Val, _ := ev.F2(dp2.Nodes)
	sp2Val, _ := ev.F2(sp2.Nodes)
	if sp2Val < 0.9*dp2Val {
		t.Fatalf("SampleF2 exact value %v below 90%% of DPF2 value %v", sp2Val, dp2Val)
	}
}

func TestGreedyBeatsBaselines(t *testing.T) {
	// Figs 6/7: ApproxF1/ApproxF2 outperform Degree and Dominate on both
	// metrics on power-law graphs. At modest k the gap is already visible.
	g, err := graph.BarabasiAlbert(400, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	const L, k, R = 6, 20, 150
	ev, _ := hitting.NewEvaluator(g, L)

	ap1, err := ApproxF1(g, optsFor(k, L, R))
	if err != nil {
		t.Fatal(err)
	}
	ap2, err := ApproxF2(g, optsFor(k, L, R))
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Degree(g, k)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := Dominate(g, k)
	if err != nil {
		t.Fatal(err)
	}

	ahtAp, _ := ev.AverageHittingTime(ap1.Nodes)
	ahtDeg, _ := ev.AverageHittingTime(deg.Nodes)
	ahtDom, _ := ev.AverageHittingTime(dom.Nodes)
	if ahtAp > ahtDeg || ahtAp > ahtDom {
		t.Errorf("AHT: ApproxF1 %v should beat Degree %v and Dominate %v", ahtAp, ahtDeg, ahtDom)
	}
	ehnAp, _ := ev.F2(ap2.Nodes)
	ehnDeg, _ := ev.F2(deg.Nodes)
	ehnDom, _ := ev.F2(dom.Nodes)
	if ehnAp < ehnDeg || ehnAp < ehnDom {
		t.Errorf("EHN: ApproxF2 %v should beat Degree %v and Dominate %v", ehnAp, ehnDeg, ehnDom)
	}
}

func TestSelectionPrefixProperty(t *testing.T) {
	// Greedy selections for smaller k are prefixes of larger-k runs with the
	// same parameters — the experiments rely on this to sweep k cheaply.
	g := smallGraph(t)
	a, err := ApproxF1(g, optsFor(4, 5, 100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApproxF1(g, optsFor(8, 5, 100))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("prefix property broken: %v vs %v", a.Nodes, b.Nodes)
		}
	}
}

func TestDegreeBaseline(t *testing.T) {
	g, _ := graph.Star(10)
	sel, err := Degree(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Nodes[0] != 0 {
		t.Fatalf("Degree first pick %d, want hub 0", sel.Nodes[0])
	}
	if sel.Gains[0] != 9 {
		t.Fatalf("Degree hub gain %v, want 9", sel.Gains[0])
	}
}

func TestDominateBaseline(t *testing.T) {
	// Two disjoint stars: Dominate must pick both hubs first.
	b := graph.NewBuilder(12, graph.Undirected)
	for i := 1; i <= 5; i++ {
		b.AddEdge(0, i)
	}
	for i := 7; i <= 11; i++ {
		b.AddEdge(6, i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Dominate(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{sel.Nodes[0]: true, sel.Nodes[1]: true}
	if !got[0] || !got[6] {
		t.Fatalf("Dominate selected %v, want the two hubs {0, 6}", sel.Nodes)
	}
}

func TestCoreBaseline(t *testing.T) {
	// Triangle (core 2) plus big star (core 1): Core picks the triangle.
	b := graph.NewBuilder(10, graph.Undirected)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	for leaf := 4; leaf < 10; leaf++ {
		b.AddEdge(3, leaf)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Core(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, u := range sel.Nodes {
		if !want[u] {
			t.Fatalf("Core selected %v, want triangle", sel.Nodes)
		}
	}
	if sel.Gains[0] != 2 {
		t.Fatalf("Core gain %v, want core number 2", sel.Gains[0])
	}
	if _, err := Core(nil, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Core(g, -1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestKClampAndZero(t *testing.T) {
	g, _ := graph.Path(5)
	sel, err := ApproxF1(g, optsFor(100, 3, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 5 {
		t.Fatalf("k>n should clamp to n: got %d", len(sel.Nodes))
	}
	sel, err = DPF1(g, optsFor(0, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 0 {
		t.Fatalf("k=0 selected %v", sel.Nodes)
	}
}

func TestOptionValidation(t *testing.T) {
	g, _ := graph.Path(3)
	if _, err := DPF1(nil, optsFor(1, 2, 0)); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := DPF1(g, Options{K: -1, L: 2}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := DPF1(g, Options{K: 1, L: -2}); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := ApproxF1(g, Options{K: 1, L: 2, R: 0}); err == nil {
		t.Error("R=0 accepted for approximate algorithm")
	}
	if _, err := SampleF1(g, Options{K: 1, L: 2, R: 0}); err == nil {
		t.Error("R=0 accepted for sampling algorithm")
	}
	if _, err := Degree(g, -1); err == nil {
		t.Error("Degree negative k accepted")
	}
	if _, err := Dominate(g, -1); err == nil {
		t.Error("Dominate negative k accepted")
	}
	if _, err := Degree(nil, 1); err == nil {
		t.Error("Degree nil graph accepted")
	}
	if _, err := Dominate(nil, 1); err == nil {
		t.Error("Dominate nil graph accepted")
	}
}

func TestSelectionString(t *testing.T) {
	g, _ := graph.Star(5)
	sel, _ := Degree(g, 2)
	if s := sel.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := smallGraph(t)
	a, _ := ApproxF1(g, optsFor(5, 4, 80))
	b, _ := ApproxF1(g, optsFor(5, 4, 80))
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("same seed, different selections: %v vs %v", a.Nodes, b.Nodes)
		}
	}
}

func TestApproxWithIndexReuse(t *testing.T) {
	// Sharing one index across both problems and several budgets.
	g := smallGraph(t)
	opts := optsFor(6, 5, 100)
	full, err := ApproxF1(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := buildIndexForTest(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaIx, err := ApproxWithIndex(ix, 1, opts.K, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Nodes {
		if full.Nodes[i] != viaIx.Nodes[i] {
			t.Fatalf("index reuse changed selection: %v vs %v", full.Nodes, viaIx.Nodes)
		}
	}
	if _, err := ApproxWithIndex(ix, 2, -1, false); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := ApproxWithIndex(ix, 9, 3, false); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Algorithms must run on disconnected graphs; with k=2 the two
	// components' hubs are the right picks for F2.
	b := graph.NewBuilder(14, graph.Undirected)
	for i := 1; i <= 6; i++ {
		b.AddEdge(0, i)
	}
	for i := 8; i <= 13; i++ {
		b.AddEdge(7, i)
	}
	g, _ := b.Build()
	sel, err := DPF2(g, optsFor(2, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{sel.Nodes[0]: true, sel.Nodes[1]: true}
	if !got[0] || !got[7] {
		t.Fatalf("selected %v, want hubs {0,7}", sel.Nodes)
	}
}
