package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/index"
)

// The paper proves the approximate greedy algorithm reaches 1 − 1/e − ε for
// "an appropriate parameter R" and observes empirically that R = 100
// suffices, but gives no procedure for picking R on an unfamiliar graph.
// ApproxAdaptive supplies one: double R until the greedy selection
// stabilizes between consecutive sample sizes. Because each run is cheap
// (O(kRLn)) and R grows geometrically, the total cost is within a constant
// factor of the final run.

// AdaptiveResult reports an ApproxAdaptive run.
type AdaptiveResult struct {
	Selection
	// RUsed is the sample size of the accepted selection.
	RUsed int
	// Rounds is the number of selection runs performed.
	Rounds int
	// Stability is the Jaccard similarity between the last two selections.
	Stability float64
}

// ApproxAdaptive runs the approximate greedy algorithm with geometrically
// increasing sample sizes, starting at opts.R (or 25 if zero), until the
// Jaccard similarity of two consecutive selections reaches stability (e.g.
// 0.95), or R exceeds 64× the starting value. The final selection is
// returned with the R that produced it.
func ApproxAdaptive(g *graph.Graph, opts Options, p index.Problem, stability float64) (*AdaptiveResult, error) {
	if stability <= 0 || stability > 1 {
		return nil, fmt.Errorf("core: stability %v outside (0,1]", stability)
	}
	if opts.R == 0 {
		opts.R = 25
	}
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	start := time.Now()
	maxR := opts.R * 64
	var prev []int
	var last *Selection
	res := &AdaptiveResult{}
	workers := opts.workers()
	for r := opts.R; ; r *= 2 {
		ix, err := index.BuildWorkers(g, opts.L, r, opts.Seed, workers)
		if err != nil {
			return nil, err
		}
		sel, err := ApproxWithIndexWorkers(ix, p, opts.K, opts.Lazy, workers)
		if err != nil {
			return nil, err
		}
		res.Rounds++
		last = sel
		res.RUsed = r
		if prev != nil {
			res.Stability = jaccard(prev, sel.Nodes)
			if res.Stability >= stability {
				break
			}
		}
		if r*2 > maxR {
			break
		}
		prev = sel.Nodes
	}
	res.Selection = *last
	res.Selection.BuildTime = time.Since(start) - last.SelectTime
	return res, nil
}

// ApproxStochastic runs the approximate greedy algorithm with the
// stochastic-greedy driver (Mirzasoleiman et al.): each round evaluates a
// random ⌈(n/k)·ln(1/eps)⌉-subset of candidates against the inverted index.
// Total gain evaluations are O(n·ln(1/eps)) regardless of k, versus CELF's
// O(n) first sweep plus per-round re-evaluations; the guarantee relaxes to
// 1 − 1/e − ε(index) − eps(driver) in expectation. Use when both n and k
// are large.
func ApproxStochastic(g *graph.Graph, opts Options, p index.Problem, eps float64) (*Selection, error) {
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	start := time.Now()
	ix, err := index.BuildWorkers(g, opts.L, opts.R, opts.Seed, opts.workers())
	if err != nil {
		return nil, err
	}
	d, err := ix.NewDTable(p)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)
	start = time.Now()
	res, err := greedy.RunStochastic(g.N(), opts.K, dtableOracle{d}, eps, opts.Seed+0x57)
	if err != nil {
		return nil, err
	}
	name := "StochasticF1"
	if p == index.Problem2 {
		name = "StochasticF2"
	}
	return &Selection{
		Algorithm:   name,
		Nodes:       res.Selected,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   build,
		SelectTime:  time.Since(start),
	}, nil
}

// jaccard returns |A∩B| / |A∪B| for two node lists.
func jaccard(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[int]bool, len(a))
	for _, u := range a {
		set[u] = true
	}
	inter := 0
	for _, u := range b {
		if set[u] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
