package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// referenceTop is the obviously-correct O(n log n) selection: sort all
// non-excluded candidates by (gain desc, id asc) and truncate.
func referenceTop(gains []float64, exclude []bool, b int) ([]int, []float64) {
	var ids []int
	for u := range gains {
		if exclude != nil && exclude[u] {
			continue
		}
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool {
		gi, gj := gains[ids[i]], gains[ids[j]]
		if gi != gj {
			return gi > gj
		}
		return ids[i] < ids[j]
	})
	if b > len(ids) {
		b = len(ids)
	}
	ids = ids[:b]
	top := make([]float64, len(ids))
	for i, u := range ids {
		top[i] = gains[u]
	}
	return ids, top
}

func TestTopOfGainsMatchesSortReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rnd.Intn(50)
		gains := make([]float64, n)
		for i := range gains {
			// Coarse values force plenty of ties, exercising the id
			// tie-break at the heap boundary.
			gains[i] = float64(rnd.Intn(5))
		}
		var exclude []bool
		if rnd.Intn(2) == 0 {
			exclude = make([]bool, n)
			for i := range exclude {
				exclude[i] = rnd.Intn(4) == 0
			}
		}
		b := rnd.Intn(n + 3)
		gotN, gotG := TopOfGains(gains, exclude, b)
		wantN, wantG := referenceTop(gains, exclude, b)
		if len(gotN) != len(wantN) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(gotN), len(wantN))
		}
		for i := range wantN {
			if gotN[i] != wantN[i] || math.Float64bits(gotG[i]) != math.Float64bits(wantG[i]) {
				t.Fatalf("trial %d (n=%d b=%d): got %v/%v want %v/%v", trial, n, b, gotN, gotG, wantN, wantG)
			}
		}
	}
}

func TestTopOfGainsEdgeCases(t *testing.T) {
	if n, g := TopOfGains(nil, nil, 5); len(n) != 0 || len(g) != 0 {
		t.Fatalf("empty gains: %v %v", n, g)
	}
	if n, _ := TopOfGains([]float64{1, 2}, nil, 0); len(n) != 0 {
		t.Fatalf("b=0: %v", n)
	}
	all := []bool{true, true, true}
	if n, _ := TopOfGains([]float64{1, 2, 3}, all, 2); len(n) != 0 {
		t.Fatalf("all excluded: %v", n)
	}
}

func TestTopGainsDeterministicAcrossWorkers(t *testing.T) {
	g, err := graph.BarabasiAlbert(500, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(g, 5, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []index.Problem{index.Problem1, index.Problem2} {
		d, err := ix.NewDTable(p)
		if err != nil {
			t.Fatal(err)
		}
		d.Update(3)
		d.Update(77)
		exclude := make([]bool, g.N())
		exclude[3], exclude[77] = true, true

		refN, refG, err := TopGains(context.Background(), d, 12, exclude, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(refN) != 12 {
			t.Fatalf("%v: %d results, want 12", p, len(refN))
		}
		for i := 1; i < len(refG); i++ {
			if refG[i] > refG[i-1] {
				t.Fatalf("%v: gains not descending: %v", p, refG)
			}
		}
		for _, u := range refN {
			if exclude[u] {
				t.Fatalf("%v: excluded node %d in results", p, u)
			}
		}
		for _, workers := range []int{2, 4, 7} {
			gotN, gotG, err := TopGains(context.Background(), d, 12, exclude, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range refN {
				if gotN[i] != refN[i] || math.Float64bits(gotG[i]) != math.Float64bits(refG[i]) {
					t.Fatalf("%v workers=%d: got %v/%v want %v/%v", p, workers, gotN, gotG, refN, refG)
				}
			}
		}
		// Cross-check the winner against a brute-force argmax.
		bestU, bestG := -1, 0.0
		for u := 0; u < g.N(); u++ {
			if exclude[u] {
				continue
			}
			if gu := d.Gain(u); bestU == -1 || gu > bestG {
				bestU, bestG = u, gu
			}
		}
		if refN[0] != bestU {
			t.Fatalf("%v: top-1 = %d, brute force argmax = %d", p, refN[0], bestU)
		}
	}
}

func TestTopGainsValidation(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 2, 1)
	ix, _ := index.Build(g, 4, 5, 1)
	d, _ := ix.NewDTable(index.Problem2)
	if _, _, err := TopGains(context.Background(), nil, 3, nil, 1); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, _, err := TopGains(context.Background(), d, -1, nil, 1); err == nil {
		t.Fatal("negative b accepted")
	}
	if _, _, err := TopGains(context.Background(), d, 3, make([]bool, 2), 1); err == nil {
		t.Fatal("short exclude mask accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := TopGains(ctx, d, 3, nil, 1); err != context.Canceled {
		t.Fatalf("canceled ctx: err = %v", err)
	}
}
