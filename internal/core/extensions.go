package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/index"
	"repro/internal/rng"
)

// This file implements the three extensions the paper sketches as future
// work in Section 5:
//
//  1. Combined: maximize a positive weighted combination of the two
//     objectives ("one may combine these two objective functions (e.g., by
//     a positive weights, it is still submodular)").
//  2. PartialCover: the complementary problem — given α ∈ [0,1], find the
//     minimum set whose expected domination covers at least α·n nodes.
//  3. EdgeDomination: count the expected number of distinct edges traversed
//     by the L-length walks before hitting the targeted set.

// combinedOracle mixes the Problem-1 and Problem-2 gains of a shared index.
// Both objectives are normalized to [0, 1] ranges (F1 by nL, F2 by n) so the
// weight is scale-free; a positive combination of submodular functions is
// submodular, so CELF remains valid. Gain is a pure read of both D-tables,
// so the parallel drivers may shard it like any other index-backed oracle.
type combinedOracle struct {
	d1, d2 *index.DTable
	w      float64 // weight on normalized F1; 1−w on normalized F2
	nL, n  float64
}

func (o *combinedOracle) Gain(u int) float64 {
	return o.w*o.d1.Gain(u)/o.nL + (1-o.w)*o.d2.Gain(u)/o.n
}

func (o *combinedOracle) Update(u int) {
	o.d1.Update(u)
	o.d2.Update(u)
}

// Combined solves the weighted combined problem
//
//	max  w·F1(S)/(nL) + (1−w)·F2(S)/n   s.t. |S| ≤ k
//
// with the approximate greedy machinery: one inverted index feeds both
// objectives. w = 1 reduces to ApproxF1, w = 0 to ApproxF2.
func Combined(g *graph.Graph, opts Options, w float64) (*Selection, error) {
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	if w < 0 || w > 1 {
		return nil, fmt.Errorf("core: combination weight %v outside [0,1]", w)
	}
	if opts.L == 0 {
		return nil, fmt.Errorf("core: combined objective undefined at L=0 (F1 normalization nL vanishes)")
	}
	workers := opts.workers()
	start := time.Now()
	ix, err := index.BuildWorkers(g, opts.L, opts.R, opts.Seed, workers)
	if err != nil {
		return nil, err
	}
	d1, err := ix.NewDTable(index.Problem1)
	if err != nil {
		return nil, err
	}
	d2, err := ix.NewDTable(index.Problem2)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)
	oracle := &combinedOracle{
		d1: d1, d2: d2, w: w,
		nL: float64(g.N()) * float64(opts.L),
		n:  float64(g.N()),
	}
	start = time.Now()
	res, err := driveWorkers(context.Background(), g.N(), opts.K, oracle, opts.Lazy, workers)
	if err != nil {
		return nil, err
	}
	return &Selection{
		Algorithm:   fmt.Sprintf("Combined(w=%.2f)", w),
		Nodes:       res.Selected,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   build,
		SelectTime:  time.Since(start),
	}, nil
}

// PartialCoverResult extends Selection with the coverage trajectory of the
// partial-cover run.
type PartialCoverResult struct {
	Selection
	// Coverage[i] is the estimated expected number of dominated nodes after
	// the first i+1 selections.
	Coverage []float64
	// Target is the requested α·n threshold.
	Target float64
	// Achieved reports whether the threshold was reached before exhausting
	// the candidate set.
	Achieved bool
}

// PartialCover solves the paper's complementary problem: find the minimum
// number of nodes whose expected domination count reaches at least α·n.
// Greedy selection on the submodular coverage objective gives the classic
// ln(1/ε)-style bicriteria guarantee for partial cover. Options.K is
// ignored; the budget is determined by the threshold (capped at n).
func PartialCover(g *graph.Graph, opts Options, alpha float64) (*PartialCoverResult, error) {
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: coverage fraction α=%v outside [0,1]", alpha)
	}
	start := time.Now()
	ix, err := index.BuildWorkers(g, opts.L, opts.R, opts.Seed, opts.workers())
	if err != nil {
		return nil, err
	}
	d, err := ix.NewDTable(index.Problem2)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)
	target := alpha * float64(g.N())
	res := &PartialCoverResult{Target: target}
	res.Algorithm = fmt.Sprintf("PartialCover(α=%.2f)", alpha)
	res.BuildTime = build

	start = time.Now()
	selected := make([]bool, g.N())
	covered := 0.0
	for covered < target && len(res.Nodes) < g.N() {
		best, bestGain := -1, 0.0
		for u := 0; u < g.N(); u++ {
			if selected[u] {
				continue
			}
			gn := d.Gain(u)
			res.Evaluations++
			if best == -1 || gn > bestGain {
				best, bestGain = u, gn
			}
		}
		if best == -1 || bestGain <= 0 {
			break // no candidate adds coverage: the target is unreachable
		}
		selected[best] = true
		d.Update(best)
		covered += bestGain
		res.Nodes = append(res.Nodes, best)
		res.Gains = append(res.Gains, bestGain)
		res.Coverage = append(res.Coverage, covered)
	}
	res.Achieved = covered >= target
	res.SelectTime = time.Since(start)
	return res, nil
}

// EdgeDomination estimates the expected number of distinct edges traversed
// by L-length random walks from all sources before they hit the targeted
// set S (the paper's second future-work problem). A walk that hits S stops
// contributing at the hit; a walk that never hits S contributes all the
// distinct edges it traverses. R walks per source are averaged. Larger
// values mean the targeted set leaves more of the graph "unshielded".
func EdgeDomination(g *graph.Graph, S []int, L, R int, seed uint64) (float64, error) {
	if g == nil || g.N() == 0 {
		return 0, graph.ErrEmptyGraph
	}
	if L < 0 {
		return 0, fmt.Errorf("core: negative walk length L=%d", L)
	}
	if R <= 0 {
		return 0, fmt.Errorf("core: sample size R=%d, want > 0", R)
	}
	inS := make([]bool, g.N())
	for _, v := range S {
		if v < 0 || v >= g.N() {
			return 0, fmt.Errorf("core: set member %d out of range [0,%d): %w", v, g.N(), graph.ErrNodeRange)
		}
		inS[v] = true
	}
	rnd := rng.New(seed)
	// Distinct-edge tracking with a generation-stamped map from packed edge
	// keys; walks are short so a small map reused across walks is fine.
	seen := make(map[int64]uint32, L)
	var generation uint32
	total := 0.0
	n := int64(g.N())
	for u := 0; u < g.N(); u++ {
		if inS[u] {
			continue
		}
		for i := 0; i < R; i++ {
			generation++
			cur := u
			count := 0
			for step := 0; step < L; step++ {
				v := g.PickNeighbor(cur, rnd.Float64())
				if v < 0 {
					break
				}
				a, b := int64(cur), int64(v)
				if a > b {
					a, b = b, a
				}
				key := a*n + b
				if seen[key] != generation {
					seen[key] = generation
					count++
				}
				if inS[v] {
					break
				}
				cur = v
			}
			total += float64(count)
		}
	}
	return total / float64(R), nil
}

// GreedyEdgeDomination selects k nodes minimizing the estimated expected
// pre-hit edge traversal — the natural greedy for the future-work objective.
// It re-estimates the objective per candidate (no index formulation exists
// for edge counting), so it is O(k·n·nRL): use small graphs. The walk
// estimator is re-seeded identically for every evaluation so comparisons
// between candidates are common-random-number paired.
func GreedyEdgeDomination(g *graph.Graph, opts Options) (*Selection, error) {
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	start := time.Now()
	var s []int
	oracle := greedy.OracleFuncs(
		func(u int) float64 {
			cand := append(append([]int(nil), s...), u)
			v, err := EdgeDomination(g, cand, opts.L, opts.R, opts.Seed)
			if err != nil {
				return 0
			}
			return -v // minimize traversal = maximize its negation
		},
		func(u int) { s = append(s, u) },
	)
	res, err := greedy.Run(g.N(), opts.K, oracle)
	if err != nil {
		return nil, err
	}
	return &Selection{
		Algorithm:   "GreedyEdgeDomination",
		Nodes:       res.Selected,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		SelectTime:  time.Since(start),
	}, nil
}
