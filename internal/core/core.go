// Package core implements the random-walk domination algorithms of the
// paper — its primary contribution:
//
//   - DPF1 / DPF2: the DP-based greedy algorithm of Section 3.1, computing
//     exact marginal gains with the dynamic program of Theorems 2.2/2.3;
//     O(k n m L) time (O(n + kn·mL) objective evaluations), impractical
//     beyond small graphs, and the accuracy reference for everything else.
//   - SampleF1 / SampleF2: the sampling-based greedy algorithm of Section
//     3.1, estimating marginal gains with Algorithm 2; O(k n² R L) walks.
//   - ApproxF1 / ApproxF2: the approximate greedy algorithm of Section 3.2
//     (Algorithm 6), materializing R walks per node in an inverted index and
//     estimating all marginal gains from it; O(k R L n) time, O(nRL + m)
//     space, 1 − 1/e − ε approximation.
//   - Degree / Dominate: the two baselines of Section 4.1.
//   - Combined / PartialCover / EdgeDomination: the three future-work
//     extensions sketched in Section 5.
//
// All algorithms return a Selection describing the chosen nodes in selection
// order with their recorded marginal gains and timing breakdowns.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/hitting"
	"repro/internal/index"
	"repro/internal/walk"
)

// Options configures a selection run.
type Options struct {
	// K is the cardinality budget |S| <= K. Values above n are clamped.
	K int
	// L is the random-walk length bound.
	L int
	// R is the per-node sample size for the sampling-based and approximate
	// algorithms (ignored by DP and baselines). The paper finds R = 100
	// sufficient in practice (Section 4.2).
	R int
	// Seed makes sampling deterministic.
	Seed uint64
	// Lazy selects the CELF lazy-evaluation driver instead of the plain
	// per-round scan. Valid for the DP and approximate algorithms, whose
	// gain functions are submodular (exactly, and per-sample respectively).
	Lazy bool
	// Workers shards index construction and the approximate algorithms'
	// gain evaluations over this many goroutines. Zero (the default) means
	// runtime.GOMAXPROCS(0). Selections are bit-for-bit identical for every
	// worker count: walks are seeded per (node, replicate) and gains
	// accumulate in integers, so only wall-clock time changes.
	Workers int
}

// workers resolves the Workers knob, defaulting to all available cores.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) validate(g *graph.Graph, needsR bool) error {
	if g == nil || g.N() == 0 {
		return graph.ErrEmptyGraph
	}
	if o.K < 0 {
		return fmt.Errorf("core: negative budget K=%d", o.K)
	}
	if o.L < 0 {
		return fmt.Errorf("core: negative walk length L=%d", o.L)
	}
	if needsR && o.R <= 0 {
		return fmt.Errorf("core: sample size R=%d, want > 0", o.R)
	}
	return nil
}

// Selection is the result of a selection algorithm.
type Selection struct {
	// Algorithm is the name used in the paper's figures (e.g. "ApproxF1").
	Algorithm string
	// Nodes lists the selected nodes in selection order; prefixes of the
	// list are the algorithm's selections for smaller budgets.
	Nodes []int
	// Gains holds the marginal gain recorded at each selection, parallel to
	// Nodes. For sampled algorithms these are estimates.
	Gains []float64
	// Evaluations counts marginal-gain computations.
	Evaluations int
	// BuildTime is preprocessing time (index construction); SelectTime is
	// the greedy loop. Total run time is their sum.
	BuildTime  time.Duration
	SelectTime time.Duration
}

// Objective returns the telescoped objective value Σ Gains.
func (s *Selection) Objective() float64 {
	t := 0.0
	for _, g := range s.Gains {
		t += g
	}
	return t
}

func (s *Selection) String() string {
	return fmt.Sprintf("%s: k=%d objective=%.4g build=%v select=%v",
		s.Algorithm, len(s.Nodes), s.Objective(), s.BuildTime.Round(time.Millisecond), s.SelectTime.Round(time.Millisecond))
}

// drive runs the configured greedy driver over the oracle.
func drive(n, k int, oracle greedy.Oracle, lazy bool) (*greedy.Result, error) {
	return driveWorkers(context.Background(), n, k, oracle, lazy, 1)
}

// driveWorkers runs the configured greedy driver, sharding gain evaluations
// over workers goroutines when workers > 1. The oracle must then support
// concurrent Gain calls between Updates (index.DTable does; the DP and
// sampling oracles do not and always pass workers = 1). Cancellation of ctx
// aborts the selection with ctx's error.
func driveWorkers(ctx context.Context, n, k int, oracle greedy.Oracle, lazy bool, workers int) (*greedy.Result, error) {
	return driveStream(ctx, n, k, oracle, lazy, workers, nil)
}

// driveStream is driveWorkers with a per-pick observer threaded through to
// the greedy drivers.
func driveStream(ctx context.Context, n, k int, oracle greedy.Oracle, lazy bool, workers int, obs greedy.PickObserver) (*greedy.Result, error) {
	if lazy {
		return greedy.RunLazyWorkersStream(ctx, n, k, oracle, workers, obs)
	}
	return greedy.RunWorkersStream(ctx, n, k, oracle, workers, obs)
}

// ---------------------------------------------------------------------------
// DP-based greedy (DPF1, DPF2)
// ---------------------------------------------------------------------------

// dpOracle computes exact marginal gains F(S ∪ {u}) − F(S) with the dynamic
// program, caching F(S) between updates.
type dpOracle struct {
	obj  func([]int) (float64, error)
	s    []int
	cand []int
	cur  float64
	err  error
}

func (o *dpOracle) Gain(u int) float64 {
	if o.err != nil {
		return 0
	}
	o.cand = append(o.cand[:0], o.s...)
	o.cand = append(o.cand, u)
	f, err := o.obj(o.cand)
	if err != nil {
		o.err = err
		return 0
	}
	return f - o.cur
}

func (o *dpOracle) Update(u int) {
	if o.err != nil {
		return
	}
	o.s = append(o.s, u)
	f, err := o.obj(o.s)
	if err != nil {
		o.err = err
		return
	}
	o.cur = f
}

func dpGreedy(g *graph.Graph, opts Options, name string, pick func(*hitting.Evaluator) func([]int) (float64, error)) (*Selection, error) {
	if err := opts.validate(g, false); err != nil {
		return nil, err
	}
	start := time.Now()
	ev, err := hitting.NewEvaluator(g, opts.L)
	if err != nil {
		return nil, err
	}
	oracle := &dpOracle{obj: pick(ev)}
	build := time.Since(start)
	start = time.Now()
	res, err := drive(g.N(), opts.K, oracle, opts.Lazy)
	if err != nil {
		return nil, err
	}
	if oracle.err != nil {
		return nil, oracle.err
	}
	return &Selection{
		Algorithm:   name,
		Nodes:       res.Selected,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   build,
		SelectTime:  time.Since(start),
	}, nil
}

// DPF1 solves Problem 1 with the DP-based greedy algorithm: exact marginal
// gains for F1(S) = nL − Σ_{u∈V\S} h^L_{uS}, 1 − 1/e approximation.
func DPF1(g *graph.Graph, opts Options) (*Selection, error) {
	return dpGreedy(g, opts, "DPF1", func(ev *hitting.Evaluator) func([]int) (float64, error) {
		return ev.F1
	})
}

// DPF2 solves Problem 2 with the DP-based greedy algorithm: exact marginal
// gains for F2(S) = Σ_{u∈V} p^L_{uS}, 1 − 1/e approximation.
func DPF2(g *graph.Graph, opts Options) (*Selection, error) {
	return dpGreedy(g, opts, "DPF2", func(ev *hitting.Evaluator) func([]int) (float64, error) {
		return ev.F2
	})
}

// ---------------------------------------------------------------------------
// Sampling-based greedy (SampleF1, SampleF2)
// ---------------------------------------------------------------------------

// sampleOracle estimates marginal gains by running Algorithm 2 afresh for
// every candidate — the paper's intermediate algorithm, O(kn²R) walks total.
type sampleOracle struct {
	est   *walk.Estimator
	first bool // true: F1, false: F2
	r     int
	s     []int
	cand  []int
	cur   float64
	err   error
}

func (o *sampleOracle) eval(S []int) float64 {
	if o.err != nil {
		return 0
	}
	f1, f2, err := o.est.EstimateF(S, o.r)
	if err != nil {
		o.err = err
		return 0
	}
	if o.first {
		return f1
	}
	return f2
}

func (o *sampleOracle) Gain(u int) float64 {
	o.cand = append(o.cand[:0], o.s...)
	o.cand = append(o.cand, u)
	return o.eval(o.cand) - o.cur
}

func (o *sampleOracle) Update(u int) {
	o.s = append(o.s, u)
	o.cur = o.eval(o.s)
}

func sampleGreedy(g *graph.Graph, opts Options, name string, first bool) (*Selection, error) {
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	start := time.Now()
	est, err := walk.NewEstimator(g, opts.L, opts.Seed)
	if err != nil {
		return nil, err
	}
	oracle := &sampleOracle{est: est, first: first, r: opts.R}
	build := time.Since(start)
	start = time.Now()
	// Sampling noise breaks exact submodularity, so the plain driver is used
	// regardless of opts.Lazy: a stale CELF bound may be violated by noise.
	res, err := greedy.Run(g.N(), opts.K, oracle)
	if err != nil {
		return nil, err
	}
	if oracle.err != nil {
		return nil, oracle.err
	}
	return &Selection{
		Algorithm:   name,
		Nodes:       res.Selected,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   build,
		SelectTime:  time.Since(start),
	}, nil
}

// SampleF1 solves Problem 1 with the sampling-based greedy algorithm,
// re-estimating every marginal gain with Algorithm 2.
func SampleF1(g *graph.Graph, opts Options) (*Selection, error) {
	return sampleGreedy(g, opts, "SampleF1", true)
}

// SampleF2 solves Problem 2 with the sampling-based greedy algorithm.
func SampleF2(g *graph.Graph, opts Options) (*Selection, error) {
	return sampleGreedy(g, opts, "SampleF2", false)
}

// ---------------------------------------------------------------------------
// Approximate greedy (ApproxF1, ApproxF2) — Algorithm 6
// ---------------------------------------------------------------------------

// dtableOracle adapts an index.DTable to the greedy.BatchOracle interface.
// Gain and GainBatch are pure reads of the D-table, so the parallel drivers
// may call them concurrently between Updates.
type dtableOracle struct{ d *index.DTable }

func (o dtableOracle) Gain(u int) float64 { return o.d.Gain(u) }
func (o dtableOracle) Update(u int)       { o.d.Update(u) }
func (o dtableOracle) GainBatch(us []int, out []float64) []float64 {
	return o.d.GainBatch(us, out)
}

// ApproxF1 solves Problem 1 with the approximate greedy algorithm
// (Algorithm 6): build the inverted index once, then run greedy with
// index-estimated gains. O(kRLn) time, O(nRL + m) space.
func ApproxF1(g *graph.Graph, opts Options) (*Selection, error) {
	return approxGreedy(g, opts, "ApproxF1", index.Problem1)
}

// ApproxF2 solves Problem 2 with the approximate greedy algorithm.
func ApproxF2(g *graph.Graph, opts Options) (*Selection, error) {
	return approxGreedy(g, opts, "ApproxF2", index.Problem2)
}

func approxGreedy(g *graph.Graph, opts Options, name string, p index.Problem) (*Selection, error) {
	if err := opts.validate(g, true); err != nil {
		return nil, err
	}
	workers := opts.workers()
	start := time.Now()
	ix, err := index.BuildWorkers(g, opts.L, opts.R, opts.Seed, workers)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)
	sel, err := ApproxWithIndexWorkers(ix, p, opts.K, opts.Lazy, workers)
	if err != nil {
		return nil, err
	}
	sel.Algorithm = name
	sel.BuildTime = build
	return sel, nil
}

// ApproxWithIndex runs the greedy loop of Algorithm 6 on an already-built
// index, so several budgets or both problems can share one materialization,
// sharding gain evaluations over all available cores. BuildTime in the
// result covers only the D-table setup.
func ApproxWithIndex(ix *index.Index, p index.Problem, k int, lazy bool) (*Selection, error) {
	return ApproxWithIndexWorkers(ix, p, k, lazy, 0)
}

// ApproxWithIndexWorkers is ApproxWithIndex with an explicit worker count
// for the selection loop; workers <= 0 means runtime.GOMAXPROCS(0).
// Selections are bit-for-bit identical for every worker count.
func ApproxWithIndexWorkers(ix *index.Index, p index.Problem, k int, lazy bool, workers int) (*Selection, error) {
	return ApproxWithIndexCtx(context.Background(), ix, p, k, lazy, workers)
}

// ApproxWithIndexCtx is ApproxWithIndexWorkers with cooperative
// cancellation: canceling ctx aborts the greedy loop between evaluation
// strides and returns ctx's error. It is the entry point the query-serving
// engine uses to enforce per-request timeouts and graceful drain.
func ApproxWithIndexCtx(ctx context.Context, ix *index.Index, p index.Problem, k int, lazy bool, workers int) (*Selection, error) {
	return ApproxWithIndexStream(ctx, ix, p, k, lazy, workers, nil)
}

// Pick is one streamed greedy round: the node committed in round Round
// (1-based), its recorded marginal gain, and the objective value after the
// round — the running telescoped sum of gains, accumulated in selection
// order so that the last round's Total is bit-for-bit Selection.Objective().
type Pick struct {
	Round int
	Node  int
	Gain  float64
	Total float64
}

// ApproxWithIndexStream is ApproxWithIndexCtx with a per-round observer:
// onPick (may be nil) is called with each committed pick as it is decided,
// before the next round begins. The observer cannot perturb the selection —
// picks are reported after being committed — so the returned Selection is
// bit-for-bit identical to the blocking path's for every worker count; a
// non-nil observer error aborts the run and is returned as-is.
func ApproxWithIndexStream(ctx context.Context, ix *index.Index, p index.Problem, k int, lazy bool, workers int, onPick func(Pick) error) (*Selection, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative budget K=%d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	d, err := ix.NewDTable(p)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)
	start = time.Now()
	var obs greedy.PickObserver
	if onPick != nil {
		round, total := 0, 0.0
		obs = func(u int, gain float64) error {
			round++
			total += gain
			return onPick(Pick{Round: round, Node: u, Gain: gain, Total: total})
		}
	}
	res, err := driveStream(ctx, ix.Graph().N(), k, dtableOracle{d}, lazy, workers, obs)
	if err != nil {
		return nil, err
	}
	name := "ApproxF1"
	if p == index.Problem2 {
		name = "ApproxF2"
	}
	return &Selection{
		Algorithm:   name,
		Nodes:       res.Selected,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   build,
		SelectTime:  time.Since(start),
	}, nil
}

// ---------------------------------------------------------------------------
// Baselines (Section 4.1)
// ---------------------------------------------------------------------------

// Degree is the paper's first baseline: select the k highest-degree nodes.
func Degree(g *graph.Graph, k int) (*Selection, error) {
	if g == nil || g.N() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if k < 0 {
		return nil, fmt.Errorf("core: negative budget K=%d", k)
	}
	start := time.Now()
	nodes := g.TopKByDegree(k)
	gains := make([]float64, len(nodes))
	for i, u := range nodes {
		gains[i] = float64(g.Degree(u))
	}
	return &Selection{
		Algorithm:  "Degree",
		Nodes:      nodes,
		Gains:      gains,
		SelectTime: time.Since(start),
	}, nil
}

// Core is an additional baseline beyond the paper: select the k nodes with
// the highest k-core number (ties by degree). Core numbers are robust to
// locally star-like hubs, so this baseline separates "embedded in a dense
// region" from "merely high degree" — a useful contrast when interpreting
// why Degree underperforms greedy.
func Core(g *graph.Graph, k int) (*Selection, error) {
	if g == nil || g.N() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if k < 0 {
		return nil, fmt.Errorf("core: negative budget K=%d", k)
	}
	start := time.Now()
	core := g.CoreNumbers()
	nodes := g.TopKByCore(k)
	gains := make([]float64, len(nodes))
	for i, u := range nodes {
		gains[i] = float64(core[u])
	}
	return &Selection{
		Algorithm:  "Core",
		Nodes:      nodes,
		Gains:      gains,
		SelectTime: time.Since(start),
	}, nil
}

// Dominate is the paper's second baseline: the greedy partial dominating-set
// heuristic. In each round it selects v = argmax_{u∈V\S} |N({u}) − N(S)|,
// the node whose (open) neighborhood covers the most not-yet-covered nodes,
// exactly as specified in Section 4.1.
func Dominate(g *graph.Graph, k int) (*Selection, error) {
	if g == nil || g.N() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if k < 0 {
		return nil, fmt.Errorf("core: negative budget K=%d", k)
	}
	start := time.Now()
	covered := make([]bool, g.N())
	oracle := greedy.OracleFuncs(
		func(u int) float64 {
			gain := 0
			for _, v := range g.Neighbors(u) {
				if !covered[v] {
					gain++
				}
			}
			return float64(gain)
		},
		func(u int) {
			for _, v := range g.Neighbors(u) {
				covered[v] = true
			}
		},
	)
	// Neighborhood coverage is submodular, so the lazy driver is exact and
	// keeps the baseline fast on large graphs.
	res, err := greedy.RunLazy(g.N(), k, oracle)
	if err != nil {
		return nil, err
	}
	return &Selection{
		Algorithm:   "Dominate",
		Nodes:       res.Selected,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		SelectTime:  time.Since(start),
	}, nil
}
