package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/index"
)

func hittingEval(g *graph.Graph, L int) (*hitting.Evaluator, error) {
	return hitting.NewEvaluator(g, L)
}

func TestApproxAdaptiveStabilizes(t *testing.T) {
	g, err := graph.BarabasiAlbert(200, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxAdaptive(g, Options{K: 5, L: 5, R: 25, Seed: 4, Lazy: true}, index.Problem2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 5 {
		t.Fatalf("selected %d nodes", len(res.Nodes))
	}
	if res.Rounds < 2 {
		t.Fatalf("adaptive run needs at least 2 rounds to compare, got %d", res.Rounds)
	}
	if res.RUsed < 25 {
		t.Fatalf("RUsed = %d below the starting value", res.RUsed)
	}
	if res.Stability < 0 || res.Stability > 1 {
		t.Fatalf("stability %v outside [0,1]", res.Stability)
	}
}

func TestApproxAdaptiveDefaultsR(t *testing.T) {
	g, _ := graph.Star(30)
	res, err := ApproxAdaptive(g, Options{K: 1, L: 3, Seed: 1}, index.Problem1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// On a star any R agrees: the hub is selected and stability is 1.
	if res.Nodes[0] != 0 || res.Stability != 1 {
		t.Fatalf("star adaptive: nodes=%v stability=%v", res.Nodes, res.Stability)
	}
	if res.Rounds != 2 {
		t.Fatalf("star should stabilize at the first comparison, rounds=%d", res.Rounds)
	}
}

func TestApproxAdaptiveValidation(t *testing.T) {
	g, _ := graph.Path(4)
	if _, err := ApproxAdaptive(g, Options{K: 1, L: 2}, index.Problem1, 0); err == nil {
		t.Error("stability 0 accepted")
	}
	if _, err := ApproxAdaptive(g, Options{K: 1, L: 2}, index.Problem1, 1.5); err == nil {
		t.Error("stability >1 accepted")
	}
	if _, err := ApproxAdaptive(nil, Options{K: 1, L: 2}, index.Problem1, 0.9); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestApproxStochasticQuality(t *testing.T) {
	// Stochastic greedy over the index should land close to full approx
	// greedy on the exact objective.
	g, err := graph.BarabasiAlbert(300, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 10, L: 5, R: 100, Seed: 6}
	full, err := ApproxF2(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ApproxStochastic(g, opts, index.Problem2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 10 {
		t.Fatalf("stochastic selected %d nodes", len(st.Nodes))
	}
	evFull := exactF2(t, g, 5, full.Nodes)
	evSt := exactF2(t, g, 5, st.Nodes)
	if evSt < 0.92*evFull {
		t.Fatalf("stochastic exact F2 %v below 92%% of full approx %v", evSt, evFull)
	}
}

func TestApproxStochasticValidation(t *testing.T) {
	g, _ := graph.Path(5)
	if _, err := ApproxStochastic(g, Options{K: 1, L: 2, R: 10}, index.Problem1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := ApproxStochastic(g, Options{K: 1, L: 2, R: 0}, index.Problem1, 0.1); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := ApproxStochastic(g, Options{K: 1, L: 2, R: 10}, index.Problem(9), 0.1); err == nil {
		t.Error("bad problem accepted")
	}
}

func exactF2(t *testing.T, g *graph.Graph, L int, S []int) float64 {
	t.Helper()
	ev, err := hittingEval(g, L)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev.F2(S)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{nil, nil, 1},
		{[]int{1}, []int{1}, 1},
		{[]int{1, 2}, []int{2, 3}, 1.0 / 3},
		{[]int{1}, []int{2}, 0},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
	}
	for _, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Errorf("jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
