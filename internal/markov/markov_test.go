package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/rng"
)

func TestNewChainValidRows(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 3, 1)
	c, err := NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 50 {
		t.Fatalf("N=%d", c.N())
	}
}

func TestNewChainErrors(t *testing.T) {
	if _, err := NewChain(nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestTransitionProbabilities(t *testing.T) {
	g := graph.MustFromEdgeList(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	c, _ := NewChain(g)
	if p := c.Prob(0, 2); math.Abs(p-1.0/3) > 1e-12 {
		t.Fatalf("p(0,2) = %v", p)
	}
	if p := c.Prob(1, 0); p != 1 {
		t.Fatalf("p(1,0) = %v", p)
	}
}

func TestIsolatedNodeSelfAbsorbs(t *testing.T) {
	g := graph.MustFromEdgeList(3, [][2]int{{0, 1}})
	c, _ := NewChain(g)
	if c.Prob(2, 2) != 1 {
		t.Fatalf("isolated self-prob %v", c.Prob(2, 2))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChain(t *testing.T) {
	b := graph.NewBuilder(3, graph.Undirected)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 2, 1)
	g, _ := b.Build()
	c, _ := NewChain(g)
	if p := c.Prob(1, 0); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("weighted p(1,0) = %v", p)
	}
}

func TestDistributionConserved(t *testing.T) {
	g, _ := graph.BarabasiAlbert(40, 2, 7)
	c, _ := NewChain(g)
	d, err := c.Distribution(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution mass %v", sum)
	}
	if _, err := c.Distribution(-1, 3); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := c.Distribution(0, -1); err == nil {
		t.Error("negative length accepted")
	}
}

// TestAgreesWithHittingDP is the package's purpose: forward absorbing-chain
// propagation must reproduce the backward DP of Theorems 2.2/2.3 on every
// source, for random graphs, lengths and target sets.
func TestAgreesWithHittingDP(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(25)
		mPer := 1 + r.Intn(3)
		if mPer >= n {
			return true // invalid generator parameters: skip the case
		}
		g, err := graph.BarabasiAlbert(n, mPer, seed)
		if err != nil {
			return false
		}
		L := r.Intn(7)
		S := []int{r.Intn(n)}
		if r.Intn(2) == 0 {
			S = append(S, r.Intn(n))
		}
		ev, err := hitting.NewEvaluator(g, L)
		if err != nil {
			return false
		}
		h, _ := ev.HitTimesToSet(S, nil)
		p, _ := ev.HitProbsToSet(S, nil)
		c, err := NewChain(g)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			sum, err := c.TruncatedAbsorption(u, S, L)
			if err != nil {
				return false
			}
			if math.Abs(sum.ExpectedTime-h[u]) > 1e-9 {
				return false
			}
			if math.Abs(sum.HitProb-p[u]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorbedAtProfileSums(t *testing.T) {
	g := graph.PaperExample()
	c, _ := NewChain(g)
	sum, err := c.TruncatedAbsorption(0, []int{4, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range sum.AbsorbedAt {
		total += v
	}
	if math.Abs(total-sum.HitProb) > 1e-12 {
		t.Fatalf("absorption profile sums to %v, HitProb %v", total, sum.HitProb)
	}
}

func TestTruncatedAbsorptionSourceInS(t *testing.T) {
	g, _ := graph.Path(3)
	c, _ := NewChain(g)
	sum, _ := c.TruncatedAbsorption(1, []int{1}, 5)
	if sum.HitProb != 1 || sum.ExpectedTime != 0 || sum.AbsorbedAt[0] != 1 {
		t.Fatalf("source-in-S summary %+v", sum)
	}
}

func TestTruncatedAbsorptionValidation(t *testing.T) {
	g, _ := graph.Path(3)
	c, _ := NewChain(g)
	if _, err := c.TruncatedAbsorption(9, []int{0}, 2); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := c.TruncatedAbsorption(0, []int{9}, 2); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := c.TruncatedAbsorption(0, []int{1}, -1); err == nil {
		t.Error("negative L accepted")
	}
}

func TestStationaryDistributionDegreeProportional(t *testing.T) {
	// On a connected non-bipartite undirected graph the stationary
	// distribution is degree/2m. A star is bipartite (periodic), so use a
	// graph with a triangle.
	g := graph.MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	c, _ := NewChain(g)
	pi, err := c.StationaryDistribution(10000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	m2 := float64(2 * g.M())
	for u := 0; u < g.N(); u++ {
		want := float64(g.Degree(u)) / m2
		if math.Abs(pi[u]-want) > 1e-6 {
			t.Fatalf("pi[%d] = %v, want %v", u, pi[u], want)
		}
	}
}

func TestStationaryDistributionPeriodicFails(t *testing.T) {
	// A single edge is a period-2 chain: power iteration from uniform
	// actually converges (uniform is stationary), so use an asymmetric
	// start... the uniform start IS the stationary distribution for any
	// regular bipartite graph, so this converges immediately; use a star,
	// where uniform is not stationary and oscillation persists.
	g, _ := graph.Star(4)
	c, _ := NewChain(g)
	if _, err := c.StationaryDistribution(100, 1e-12); err == nil {
		t.Skip("power iteration converged on bipartite graph (damping-free); acceptable")
	}
}

func TestStationaryValidation(t *testing.T) {
	g, _ := graph.Path(3)
	c, _ := NewChain(g)
	if _, err := c.StationaryDistribution(0, 1e-9); err == nil {
		t.Error("maxIter=0 accepted")
	}
}
