// Package markov provides a dense absorbing-Markov-chain view of the
// L-length random walk, as an independent verification path for the
// dynamic-programming results of internal/hitting.
//
// The DP of Theorems 2.1–2.3 computes value functions backward over walk
// lengths. This package computes the same quantities forward from first
// principles of Markov chains: make the target set S absorbing, propagate
// the transition matrix step by step, and read hitting probabilities and
// expected (truncated) absorption times off the distribution sequence.
// Agreement between the two implementations (asserted in the test suites)
// is strong evidence both are correct, because they share no code and make
// errors in different places. Dense O(n²) storage restricts this package to
// small graphs, which is exactly its role: a test oracle and an analysis
// tool, not a production path.
package markov

import (
	"fmt"

	"repro/internal/graph"
)

// Chain is a dense random-walk transition matrix over a graph.
type Chain struct {
	n int
	p [][]float64 // p[u][v] = transition probability u -> v
}

// NewChain builds the dense transition matrix of the random walk on g.
// Rows of nodes with no outgoing edges are self-absorbing (the walk stays
// put), matching the walk engine's "stuck" semantics.
func NewChain(g *graph.Graph) (*Chain, error) {
	if g == nil || g.N() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	n := g.N()
	c := &Chain{n: n, p: make([][]float64, n)}
	for u := 0; u < n; u++ {
		c.p[u] = make([]float64, n)
		deg := g.WeightDegree(u)
		if deg == 0 {
			c.p[u][u] = 1
			continue
		}
		row := g.Neighbors(u)
		if ws := g.NeighborWeights(u); ws != nil {
			for i, v := range row {
				c.p[u][v] += ws[i] / deg
			}
		} else {
			share := 1 / deg
			for _, v := range row {
				c.p[u][v] += share
			}
		}
	}
	return c, nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.n }

// Prob returns the one-step transition probability u -> v.
func (c *Chain) Prob(u, v int) float64 { return c.p[u][v] }

// Validate checks that every row is a probability distribution.
func (c *Chain) Validate() error {
	for u := 0; u < c.n; u++ {
		sum := 0.0
		for v := 0; v < c.n; v++ {
			pv := c.p[u][v]
			if pv < 0 || pv > 1 {
				return fmt.Errorf("markov: p[%d][%d] = %v outside [0,1]", u, v, pv)
			}
			sum += pv
		}
		if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("markov: row %d sums to %v", u, sum)
		}
	}
	return nil
}

// Step advances a distribution one step: out = dist · P. out must not alias
// dist.
func (c *Chain) Step(dist, out []float64) {
	for v := range out {
		out[v] = 0
	}
	for u, mass := range dist {
		if mass == 0 {
			continue
		}
		row := c.p[u]
		for v, pv := range row {
			if pv != 0 {
				out[v] += mass * pv
			}
		}
	}
}

// Distribution returns the position distribution of an L-step walk starting
// at src (no absorption).
func (c *Chain) Distribution(src, L int) ([]float64, error) {
	if src < 0 || src >= c.n {
		return nil, fmt.Errorf("markov: source %d out of range [0,%d)", src, c.n)
	}
	if L < 0 {
		return nil, fmt.Errorf("markov: negative length %d", L)
	}
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	cur[src] = 1
	for t := 0; t < L; t++ {
		c.Step(cur, next)
		cur, next = next, cur
	}
	return cur, nil
}

// Absorbing derives the chain in which every state of S is absorbing.
func (c *Chain) Absorbing(S []int) (*Chain, error) {
	a := &Chain{n: c.n, p: make([][]float64, c.n)}
	inS := make([]bool, c.n)
	for _, v := range S {
		if v < 0 || v >= c.n {
			return nil, fmt.Errorf("markov: absorbing state %d out of range [0,%d)", v, c.n)
		}
		inS[v] = true
	}
	for u := 0; u < c.n; u++ {
		a.p[u] = make([]float64, c.n)
		if inS[u] {
			a.p[u][u] = 1
			continue
		}
		copy(a.p[u], c.p[u])
	}
	return a, nil
}

// HitSummary reports the truncated absorption behaviour of one source.
type HitSummary struct {
	// HitProb is the probability of absorption within L steps: p^L_{uS}.
	HitProb float64
	// ExpectedTime is the expected truncated absorption time: h^L_{uS}.
	ExpectedTime float64
	// AbsorbedAt[t] is the probability the walk is first absorbed exactly
	// at step t (index 0..L).
	AbsorbedAt []float64
}

// TruncatedAbsorption computes, for a source u and target set S, the full
// first-absorption profile of the L-length walk by forward propagation of
// the absorbing chain — the independent re-derivation of h^L_{uS} (Eq. 4)
// and p^L_{uS} (Eq. 8).
func (c *Chain) TruncatedAbsorption(u int, S []int, L int) (*HitSummary, error) {
	if u < 0 || u >= c.n {
		return nil, fmt.Errorf("markov: source %d out of range [0,%d)", u, c.n)
	}
	if L < 0 {
		return nil, fmt.Errorf("markov: negative length %d", L)
	}
	abs, err := c.Absorbing(S)
	if err != nil {
		return nil, err
	}
	inS := make([]bool, c.n)
	for _, v := range S {
		inS[v] = true
	}
	sum := &HitSummary{AbsorbedAt: make([]float64, L+1)}
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	cur[u] = 1
	if inS[u] {
		sum.AbsorbedAt[0] = 1
		sum.HitProb = 1
		return sum, nil
	}
	absorbed := 0.0
	for t := 1; t <= L; t++ {
		abs.Step(cur, next)
		inMass := 0.0
		for v, in := range inS { // iterate flags, not S: S may hold duplicates
			if in {
				inMass += next[v]
			}
		}
		newly := inMass - absorbed
		if newly < 0 {
			newly = 0
		}
		sum.AbsorbedAt[t] = newly
		sum.ExpectedTime += float64(t) * newly
		absorbed = inMass
		cur, next = next, cur
	}
	sum.HitProb = absorbed
	sum.ExpectedTime += (1 - absorbed) * float64(L) // truncation at L
	return sum, nil
}

// StationaryDistribution returns the stationary distribution of the chain by
// power iteration from the uniform distribution, or an error if it fails to
// converge within maxIter (e.g. periodic chains). For connected undirected
// graphs it converges to degree/2m.
func (c *Chain) StationaryDistribution(maxIter int, tol float64) ([]float64, error) {
	if maxIter <= 0 {
		return nil, fmt.Errorf("markov: maxIter %d, want > 0", maxIter)
	}
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	for i := range cur {
		cur[i] = 1 / float64(c.n)
	}
	for it := 0; it < maxIter; it++ {
		c.Step(cur, next)
		diff := 0.0
		for i := range next {
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		cur, next = next, cur
		if diff < tol {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d iterations", maxIter)
}
