package walk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hitting"
)

func TestNewWalkerRejectsNegativeL(t *testing.T) {
	g := graph.MustFromEdgeList(2, [][2]int{{0, 1}})
	if _, err := NewWalker(g, -1, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestWalkLengthAndValidity(t *testing.T) {
	g, _ := graph.BarabasiAlbert(100, 3, 1)
	w, err := NewWalker(g, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		start := trial % g.N()
		path := w.Walk(start)
		if len(path) != 8 {
			t.Fatalf("walk length %d, want L+1=8 on a connected graph", len(path))
		}
		if int(path[0]) != start {
			t.Fatalf("walk starts at %d, want %d", path[0], start)
		}
		for i := 1; i < len(path); i++ {
			if !g.HasEdge(int(path[i-1]), int(path[i])) {
				t.Fatalf("walk uses non-edge %d-%d", path[i-1], path[i])
			}
		}
	}
}

func TestWalkStuckAtIsolatedNode(t *testing.T) {
	g := graph.MustFromEdgeList(3, [][2]int{{0, 1}}) // node 2 isolated
	w, _ := NewWalker(g, 5, 1)
	path := w.Walk(2)
	if len(path) != 1 || path[0] != 2 {
		t.Fatalf("isolated walk = %v, want [2]", path)
	}
}

func TestWalkPanicsOnBadStart(t *testing.T) {
	g := graph.MustFromEdgeList(2, [][2]int{{0, 1}})
	w, _ := NewWalker(g, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Walk(7)
}

func TestHitTimeImmediate(t *testing.T) {
	g := graph.MustFromEdgeList(2, [][2]int{{0, 1}})
	w, _ := NewWalker(g, 5, 1)
	inS := []bool{true, false}
	tHit, hit := w.HitTime(0, inS)
	if tHit != 0 || !hit {
		t.Fatalf("start in S: got (%d,%v), want (0,true)", tHit, hit)
	}
}

func TestHitTimeDeterministicChain(t *testing.T) {
	// On the 2-node path from 0 with S={1}, the walk hits at time 1 always.
	g := graph.MustFromEdgeList(2, [][2]int{{0, 1}})
	w, _ := NewWalker(g, 5, 9)
	inS := []bool{false, true}
	for i := 0; i < 20; i++ {
		tHit, hit := w.HitTime(0, inS)
		if tHit != 1 || !hit {
			t.Fatalf("got (%d,%v), want (1,true)", tHit, hit)
		}
	}
}

func TestHitTimeCapAtL(t *testing.T) {
	// Unreachable target: always (L, false).
	g := graph.MustFromEdgeList(4, [][2]int{{0, 1}, {2, 3}})
	w, _ := NewWalker(g, 4, 2)
	inS := []bool{false, false, true, false}
	for i := 0; i < 20; i++ {
		tHit, hit := w.HitTime(0, inS)
		if tHit != 4 || hit {
			t.Fatalf("got (%d,%v), want (4,false)", tHit, hit)
		}
	}
}

func TestEstimatorUnbiasedAgainstExactDP(t *testing.T) {
	// With many samples, ĥ and p̂ converge to the exact DP values.
	g, _ := graph.BarabasiAlbert(60, 2, 5)
	const L = 6
	const R = 4000
	S := []int{0, 11}
	inS := make([]bool, g.N())
	for _, v := range S {
		inS[v] = true
	}
	ev, _ := hitting.NewEvaluator(g, L)
	exactH, _ := ev.HitTimesToSet(S, nil)
	exactP, _ := ev.HitProbsToSet(S, nil)
	w, _ := NewWalker(g, L, 77)
	for _, u := range []int{1, 5, 20, 40, 59} {
		hHat := w.EstimateHitTime(u, inS, R)
		pHat := w.EstimateHitProb(u, inS, R)
		if math.Abs(hHat-exactH[u]) > 0.15 {
			t.Errorf("u=%d: ĥ=%v exact=%v", u, hHat, exactH[u])
		}
		if math.Abs(pHat-exactP[u]) > 0.05 {
			t.Errorf("u=%d: p̂=%v exact=%v", u, pHat, exactP[u])
		}
	}
}

func TestEstimateFMatchesExact(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 2, 3)
	const L = 5
	S := []int{0, 4}
	ev, _ := hitting.NewEvaluator(g, L)
	exactF1, _ := ev.F1(S)
	exactF2, _ := ev.F2(S)
	est, err := NewEstimator(g, L, 123)
	if err != nil {
		t.Fatal(err)
	}
	f1, f2, err := est.EstimateF(S, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerances: F1 error scales with (n−|S|)L, F2 with n.
	if math.Abs(f1-exactF1) > 0.02*float64(g.N())*L {
		t.Errorf("F̂1=%v exact=%v", f1, exactF1)
	}
	if math.Abs(f2-exactF2) > 0.02*float64(g.N()) {
		t.Errorf("F̂2=%v exact=%v", f2, exactF2)
	}
}

func TestEstimateFEmptySet(t *testing.T) {
	g, _ := graph.Path(5)
	est, _ := NewEstimator(g, 4, 1)
	f1, f2, err := est.EstimateF(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 0 || f2 != 0 {
		t.Fatalf("F̂(∅) = (%v,%v), want (0,0): no walk can hit an empty set", f1, f2)
	}
}

func TestEstimateFFullSet(t *testing.T) {
	g, _ := graph.Path(4)
	est, _ := NewEstimator(g, 3, 1)
	f1, f2, err := est.EstimateF([]int{0, 1, 2, 3}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != float64(4*3) {
		t.Fatalf("F̂1(V) = %v, want nL=12", f1)
	}
	if f2 != 4 {
		t.Fatalf("F̂2(V) = %v, want n=4", f2)
	}
}

func TestEstimateFErrors(t *testing.T) {
	g, _ := graph.Path(3)
	est, _ := NewEstimator(g, 2, 1)
	if _, _, err := est.EstimateF([]int{9}, 10); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, _, err := est.EstimateF([]int{0}, 0); err == nil {
		t.Error("R=0 accepted")
	}
}

func TestForkIndependence(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 2, 7)
	w, _ := NewWalker(g, 5, 1)
	child := w.Fork()
	// Both usable; streams differ.
	a := append([]int32(nil), w.Walk(0)...)
	b := append([]int32(nil), child.Walk(0)...)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	// A single identical walk can happen by chance, so compare several.
	if same {
		a2 := append([]int32(nil), w.Walk(1)...)
		b2 := append([]int32(nil), child.Walk(1)...)
		identical := len(a2) == len(b2)
		if identical {
			for i := range a2 {
				if a2[i] != b2[i] {
					identical = false
					break
				}
			}
		}
		if identical {
			t.Fatal("forked walker mirrors parent stream")
		}
	}
}

func TestWeightedWalkBias(t *testing.T) {
	// Node 1 connects to 0 with weight 9 and to 2 with weight 1: the first
	// step from 1 should go to 0 about 90% of the time.
	b := graph.NewBuilder(3, graph.Undirected)
	b.AddWeightedEdge(0, 1, 9)
	b.AddWeightedEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWalker(g, 1, 11)
	to0 := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		path := w.Walk(1)
		if path[1] == 0 {
			to0++
		}
	}
	frac := float64(to0) / trials
	if math.Abs(frac-0.9) > 0.03 {
		t.Fatalf("weighted first-step fraction to node 0 = %v, want ≈0.9", frac)
	}
}

func TestHoeffdingBounds(t *testing.T) {
	// Lemma 3.3 closed form: R = ceil(ln((n−|S|)/δ) / (2ε²)).
	got := SampleSizeF1(1000, 30, 0.1, 0.01)
	want := int(math.Ceil(math.Log(970/0.01) / (2 * 0.01)))
	if got != want {
		t.Fatalf("SampleSizeF1 = %d, want %d", got, want)
	}
	got = SampleSizeF2(1000, 0.1, 0.01)
	want = int(math.Ceil(math.Log(1000/0.01) / (2 * 0.01)))
	if got != want {
		t.Fatalf("SampleSizeF2 = %d, want %d", got, want)
	}
	// Degenerate parameters fall back to 1 sample.
	for _, r := range []int{
		SampleSizeF1(10, 10, 0.1, 0.1),
		SampleSizeF1(10, 0, 0, 0.1),
		SampleSizeF2(10, 0.1, 0),
		SampleSizeF2(0, 0.1, 0.1),
	} {
		if r != 1 {
			t.Fatalf("degenerate sample size = %d, want 1", r)
		}
	}
}

func TestSampleSizeMonotonicity(t *testing.T) {
	// Tighter ε or δ requires more samples.
	f := func(seed uint64) bool {
		eps1, eps2 := 0.05, 0.1
		d := 0.05
		return SampleSizeF2(1000, eps1, d) >= SampleSizeF2(1000, eps2, d) &&
			SampleSizeF2(1000, 0.1, 0.01) >= SampleSizeF2(1000, 0.1, 0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateFWorkersInvariant(t *testing.T) {
	// Per-node seeding makes the estimate bit-for-bit identical for any
	// worker count.
	g, _ := graph.BarabasiAlbert(120, 3, 13)
	est, _ := NewEstimator(g, 5, 77)
	S := []int{2, 50}
	f1a, f2a, err := est.EstimateFWorkers(S, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0, 1000} {
		f1b, f2b, err := est.EstimateFWorkers(S, 40, workers)
		if err != nil {
			t.Fatal(err)
		}
		if f1a != f1b || f2a != f2b {
			t.Fatalf("workers=%d changed estimate: (%v,%v) vs (%v,%v)", workers, f1a, f2a, f1b, f2b)
		}
	}
}

func TestEstimateFDuplicateMembers(t *testing.T) {
	// Duplicate set members must not double-count the |S| term of F2.
	g, _ := graph.Star(10)
	est, _ := NewEstimator(g, 3, 1)
	_, f2a, _ := est.EstimateF([]int{0}, 50)
	_, f2b, _ := est.EstimateF([]int{0, 0, 0}, 50)
	if f2a != f2b {
		t.Fatalf("duplicates changed F2: %v vs %v", f2a, f2b)
	}
}

func TestEstimatorDeterministicForSeed(t *testing.T) {
	g, _ := graph.BarabasiAlbert(40, 2, 9)
	S := []int{3}
	a, _ := NewEstimator(g, 5, 42)
	b, _ := NewEstimator(g, 5, 42)
	f1a, f2a, _ := a.EstimateF(S, 50)
	f1b, f2b, _ := b.EstimateF(S, 50)
	if f1a != f1b || f2a != f2b {
		t.Fatalf("same seed gave different estimates: (%v,%v) vs (%v,%v)", f1a, f2a, f1b, f2b)
	}
}

func BenchmarkWalk(b *testing.B) {
	g, _ := graph.BarabasiAlbert(10000, 5, 1)
	w, _ := NewWalker(g, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Walk(i % g.N())
	}
}

func BenchmarkEstimateF(b *testing.B) {
	g, _ := graph.BarabasiAlbert(1000, 5, 1)
	est, _ := NewEstimator(g, 6, 1)
	S := []int{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := est.EstimateF(S, 10); err != nil {
			b.Fatal(err)
		}
	}
}
