// Package walk implements the L-length random-walk model of Section 2 of the
// paper and the sampling-based estimators of Section 3.1 (Algorithm 2):
//
//   - Walker runs L-length random walks on a graph;
//   - EstimateHitTime implements the unbiased estimator ĥ^L_{uS} of Eq. (9);
//   - EstimateHitProb implements the unbiased estimator Ê[X^L_{uS}] of Eq. (10);
//   - Estimator.EstimateF implements Algorithm 2, producing F̂1(S) and F̂2(S);
//   - SampleSizeF1 / SampleSizeF2 implement the Hoeffding sample-size bounds
//     of Lemmas 3.3 and 3.4.
//
// An L-length random walk starts at a node and repeatedly moves to a
// uniformly random neighbor (weight-proportionally for weighted graphs) for
// at most L hops. Nodes may repeat within a walk. A walk stuck at a node
// with no outgoing edges simply stops moving; its remaining positions are
// the stuck node, which matches the T^L_{uS} = L convention for sources that
// never reach S.
package walk

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Walker runs L-length random walks over a fixed graph. It reuses an
// internal position buffer, so the slice returned by Walk is only valid
// until the next call. A Walker is not safe for concurrent use; derive one
// per goroutine via Fork.
type Walker struct {
	g   *graph.Graph
	l   int
	rnd *rng.Source
	buf []int32
}

// NewWalker returns a walker on g with walk-length bound L, seeded
// deterministically.
func NewWalker(g *graph.Graph, L int, seed uint64) (*Walker, error) {
	if L < 0 {
		return nil, fmt.Errorf("walk: negative walk length %d", L)
	}
	return &Walker{g: g, l: L, rnd: rng.New(seed), buf: make([]int32, 0, L+1)}, nil
}

// L returns the walk-length bound.
func (w *Walker) L() int { return w.l }

// Fork derives an independent walker for use on another goroutine.
func (w *Walker) Fork() *Walker {
	return &Walker{g: w.g, l: w.l, rnd: w.rnd.Split(), buf: make([]int32, 0, w.l+1)}
}

// Walk runs one L-length random walk from start and returns the node
// sequence, position 0 being start. The walk may be shorter than L+1
// positions only if it gets stuck at a node with no outgoing edges. The
// returned slice is reused by the next Walk call.
func (w *Walker) Walk(start int) []int32 {
	if start < 0 || start >= w.g.N() {
		panic(fmt.Sprintf("walk: start node %d out of range [0,%d)", start, w.g.N()))
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, int32(start))
	u := start
	for step := 0; step < w.l; step++ {
		v := w.g.PickNeighbor(u, w.rnd.Float64())
		if v < 0 {
			break // stuck: no outgoing edges
		}
		w.buf = append(w.buf, int32(v))
		u = v
	}
	return w.buf
}

// HitTime runs one walk from start and returns the first time t at which the
// walk occupies a node with inS[node] true, or L if no such time exists
// within the budget — exactly the random variable T^L_{uS} of Eq. (3).
// The second result reports whether the walk hit.
func (w *Walker) HitTime(start int, inS []bool) (int, bool) {
	if inS[start] {
		return 0, true
	}
	u := start
	for step := 1; step <= w.l; step++ {
		v := w.g.PickNeighbor(u, w.rnd.Float64())
		if v < 0 {
			return w.l, false
		}
		if inS[v] {
			return step, true
		}
		u = v
	}
	return w.l, false
}

// EstimateHitTime returns ĥ^L_{uS}, the unbiased estimator of Eq. (9), from
// R independent walks: (Σ hit times + (R−r)·L) / R where r walks hit.
func (w *Walker) EstimateHitTime(u int, inS []bool, R int) float64 {
	if R <= 0 {
		panic("walk: sample size R must be positive")
	}
	total := 0
	for i := 0; i < R; i++ {
		t, _ := w.HitTime(u, inS)
		total += t
	}
	return float64(total) / float64(R)
}

// EstimateHitProb returns Ê[X^L_{uS}] = r/R, the unbiased estimator of
// Eq. (10).
func (w *Walker) EstimateHitProb(u int, inS []bool, R int) float64 {
	if R <= 0 {
		panic("walk: sample size R must be positive")
	}
	hits := 0
	for i := 0; i < R; i++ {
		if _, ok := w.HitTime(u, inS); ok {
			hits++
		}
	}
	return float64(hits) / float64(R)
}

// Estimator implements Algorithm 2: sampling-based estimation of F1(S) and
// F2(S) for arbitrary sets S. Each node's walks are seeded independently
// from the master seed, so estimates are identical however the per-node
// work is sharded across goroutines (EstimateFWorkers).
type Estimator struct {
	g    *graph.Graph
	l    int
	seed uint64
	inS  []bool
}

// NewEstimator returns an Algorithm-2 estimator on g with bound L.
func NewEstimator(g *graph.Graph, L int, seed uint64) (*Estimator, error) {
	if L < 0 {
		return nil, fmt.Errorf("walk: negative walk length %d", L)
	}
	return &Estimator{g: g, l: L, seed: seed, inS: make([]bool, g.N())}, nil
}

// EstimateF runs Algorithm 2 with sample size R and returns unbiased
// estimates of F1(S) and F2(S).
//
// Note on F1: the paper's Eq. (6) defines F1(S) = nL − Σ_{u∈V\S} h^L_{uS},
// while Algorithm 2 line 14 computes |V\S|·L − Σ ĥ, which differs by the
// constant |S|·L (the two forms appear interchangeably in the paper; they
// induce the same greedy ordering at fixed |S|). This implementation returns
// the Eq. (6) form so sampled values are directly comparable with the exact
// hitting.Evaluator.F1.
func (e *Estimator) EstimateF(S []int, R int) (f1, f2 float64, err error) {
	return e.EstimateFWorkers(S, R, 1)
}

// EstimateFWorkers is EstimateF sharded over the given number of
// goroutines. Results are bit-for-bit identical for every worker count.
func (e *Estimator) EstimateFWorkers(S []int, R, workers int) (f1, f2 float64, err error) {
	if R <= 0 {
		return 0, 0, fmt.Errorf("walk: sample size R = %d, want > 0", R)
	}
	if workers < 1 {
		workers = 1
	}
	g := e.g
	n := g.N()
	if workers > n {
		workers = n
	}
	for i := range e.inS {
		e.inS[i] = false
	}
	sizeS := 0
	for _, v := range S {
		if v < 0 || v >= n {
			return 0, 0, fmt.Errorf("walk: set member %d out of range [0,%d): %w", v, n, graph.ErrNodeRange)
		}
		if !e.inS[v] {
			sizeS++
		}
		e.inS[v] = true
	}

	// nodeEstimates accumulates per-node totals of hit time and hit count
	// over R walks, using a fresh per-(node, replicate) seed, then folds
	// them into (Σĥ/R, Σr/R) for the range.
	nodeEstimates := func(lo, hi int) (sumT, sumR int64) {
		for u := lo; u < hi; u++ {
			if e.inS[u] {
				continue
			}
			for i := 0; i < R; i++ {
				rnd := rng.New(rng.Mix(e.seed, uint64(u), uint64(i)))
				t, hit := hitTimeSeeded(g, e.l, u, e.inS, rnd)
				sumT += int64(t)
				if hit {
					sumR++
				}
			}
		}
		return sumT, sumR
	}

	var totT, totR int64
	if workers == 1 {
		totT, totR = nodeEstimates(0, n)
	} else {
		type partial struct{ t, r int64 }
		parts := make([]partial, workers)
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for wk := 0; wk < workers; wk++ {
			lo := wk * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(wk, lo, hi int) {
				defer wg.Done()
				t, r := nodeEstimates(lo, hi)
				parts[wk] = partial{t, r}
			}(wk, lo, hi)
		}
		wg.Wait()
		for _, p := range parts {
			totT += p.t
			totR += p.r
		}
	}
	sumH := float64(totT) / float64(R)
	sumP := float64(totR) / float64(R)
	f1 = float64(n)*float64(e.l) - sumH
	f2 = sumP + float64(sizeS) // members of S hit with probability 1 (line 15)
	return f1, f2, nil
}

// hitTimeSeeded is Walker.HitTime with an explicit RNG, used by the
// deterministic per-node estimator.
func hitTimeSeeded(g *graph.Graph, L, start int, inS []bool, rnd *rng.Source) (int, bool) {
	if inS[start] {
		return 0, true
	}
	u := start
	for step := 1; step <= L; step++ {
		v := g.PickNeighbor(u, rnd.Float64())
		if v < 0 {
			return L, false
		}
		if inS[v] {
			return step, true
		}
		u = v
	}
	return L, false
}

// SampleSizeF1 returns the Hoeffding sample size of Lemma 3.3: with
// R >= ln((n−|S|)/δ) / (2ε²) samples per node,
// Pr[|F̂1(S) − F1(S)| >= ε(n−|S|)L] <= δ.
func SampleSizeF1(n, sizeS int, eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || n-sizeS <= 0 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(n-sizeS)/delta) / (2 * eps * eps)))
}

// SampleSizeF2 returns the Hoeffding sample size of Lemma 3.4: with
// R >= ln(n/δ) / (2ε²) samples per node, Pr[|F̂2(S) − F2(S)| >= εn] <= δ.
func SampleSizeF2(n int, eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || n <= 0 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(n)/delta) / (2 * eps * eps)))
}
