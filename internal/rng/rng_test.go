package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Seed reset, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets. With 100k draws the statistic should
	// be far below the 0.001 critical value (~27.9 for 9 dof) for a correct
	// generator.
	r := New(99)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("chi-squared %v exceeds 0.001 critical value; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Split()
	// Parent remains usable and the two streams are not identical.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams overlap: %d/100 identical", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	// Shuffling preserves the multiset of elements.
	f := func(seed uint64, raw []byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		vals := make([]int, len(raw))
		for i, b := range raw {
			vals[i] = int(b)
		}
		orig := make([]int, len(vals))
		copy(orig, vals)
		r := New(seed)
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		counts := map[int]int{}
		for _, v := range orig {
			counts[v]++
		}
		for _, v := range vals {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroStateGuard(t *testing.T) {
	// Even a pathological seed must yield a usable, non-constant stream.
	r := New(0)
	a, b := r.Uint64(), r.Uint64()
	if a == b {
		t.Fatalf("seed 0 produced a constant stream: %d", a)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
