// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by all sampling code in this module.
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by the xoshiro authors. It is not cryptographically secure; it
// is chosen for speed (a few ns per call), a 2^256−1 period, and exact
// reproducibility across platforms, which the test-suite and the experiment
// harness rely on. The zero value is not usable; construct with New.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed-expansion state and returns the next value.
// It is the standard seeding mixer for the xoshiro family.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes a sequence of values into a single seed. It is used to derive
// independent per-task seeds (e.g. one per (node, replicate) walk) from a
// master seed, which makes sampling deterministic regardless of how work is
// sharded across goroutines.
func Mix(vals ...uint64) uint64 {
	acc := uint64(0x51ca5e9f2b7c63d1)
	for _, v := range vals {
		acc ^= v + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)
		acc = splitmix64(&acc)
	}
	return acc
}

// New returns a Source seeded from the given seed. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func New(seed uint64) *Source {
	r := &Source{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro requires a non-zero state; splitmix64 output is zero for at
	// most one of the four words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which avoids the modulo
// bias of naive reduction and the division of the classic rejection method.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives a new independent Source from the current stream. It is the
// supported way to hand child generators to worker goroutines: the parent
// remains usable and the children do not share state.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Perm returns a uniformly random permutation of [0, n) as a fresh slice,
// using the Fisher–Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of the first n elements using swap, with the
// same contract as math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
