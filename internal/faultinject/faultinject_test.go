package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	if Enabled() {
		t.Fatal("no plan armed, Enabled() = true")
	}
	if err := Do("anything"); err != nil {
		t.Fatalf("Do with no plan: %v", err)
	}
	Delay("anything")
	if Stats() != nil {
		t.Fatal("Stats with no plan should be nil")
	}
}

func TestDeterministicPattern(t *testing.T) {
	pattern := func(seed uint64) []bool {
		defer Enable(Plan{Seed: seed, Sites: map[string]Fault{
			"s": {P: 0.5, Err: true},
		}})()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Do("s") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 200-hit pattern")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	defer Enable(Plan{Seed: 7, Sites: map[string]Fault{
		"half": {P: 0.5, Err: true},
		"all":  {P: 1, Err: true},
		"none": {P: 0, Err: true},
	}})()
	fired := 0
	for i := 0; i < 1000; i++ {
		if Do("half") != nil {
			fired++
		}
		if Do("all") == nil {
			t.Fatal("P=1 site did not fire")
		}
		if Do("none") != nil {
			t.Fatal("P=0 site fired")
		}
	}
	if fired < 400 || fired > 600 {
		t.Fatalf("P=0.5 fired %d/1000 times", fired)
	}
	st := Stats()
	if st["all"].Hits != 1000 || st["all"].Fired != 1000 {
		t.Fatalf("site 'all' stats = %+v, want 1000/1000", st["all"])
	}
	if st["half"].Fired != int64(fired) {
		t.Fatalf("site 'half' Fired = %d, counted %d", st["half"].Fired, fired)
	}
}

func TestErrorUnwrapsToSentinel(t *testing.T) {
	defer Enable(Plan{Sites: map[string]Fault{"s": {P: 1, Err: true}}})()
	err := Do("s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not unwrap to ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "s" {
		t.Fatalf("injected error %v does not carry its site", err)
	}
}

func TestPanicFault(t *testing.T) {
	defer Enable(Plan{Sites: map[string]Fault{"s": {P: 1, Panic: true}}})()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic fault did not panic")
		}
		if _, ok := p.(*Error); !ok {
			t.Fatalf("panicked with %T, want *Error", p)
		}
	}()
	_ = Do("s")
}

func TestDelayNeverErrorsOrPanics(t *testing.T) {
	defer Enable(Plan{Sites: map[string]Fault{
		"s": {P: 1, Err: true, Panic: true, Latency: time.Millisecond},
	}})()
	start := time.Now()
	Delay("s") // must neither error nor panic despite Err+Panic armed
	if time.Since(start) < time.Millisecond {
		t.Fatal("Delay did not apply the armed latency")
	}
}

func TestLatencyApplied(t *testing.T) {
	defer Enable(Plan{Sites: map[string]Fault{"s": {P: 1, Latency: 5 * time.Millisecond}}})()
	start := time.Now()
	if err := Do("s"); err != nil {
		t.Fatalf("latency-only fault returned error %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("slept %v, want >= 5ms", d)
	}
}

func TestDisableRestoresNoOp(t *testing.T) {
	disable := Enable(Plan{Sites: map[string]Fault{"s": {P: 1, Err: true}}})
	if Do("s") == nil {
		t.Fatal("armed site did not fire")
	}
	disable()
	if Enabled() {
		t.Fatal("Enabled() after disable")
	}
	if Do("s") != nil {
		t.Fatal("site fired after disable")
	}
	disable() // idempotent
}

func TestDisableOnlyDisarmsOwnPlan(t *testing.T) {
	first := Enable(Plan{Sites: map[string]Fault{"a": {P: 1, Err: true}}})
	second := Enable(Plan{Sites: map[string]Fault{"b": {P: 1, Err: true}}})
	first() // stale disarm must not kill the second plan
	if Do("b") == nil {
		t.Fatal("second plan was disarmed by the first plan's disable func")
	}
	second()
	if Enabled() {
		t.Fatal("Enabled() after second disable")
	}
}

func TestConcurrentHitsRaceFree(t *testing.T) {
	defer Enable(Plan{Sites: map[string]Fault{"s": {P: 0.3, Err: true}}})()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = Do("s")
			}
		}()
	}
	wg.Wait()
	st := Stats()
	if st["s"].Hits != 4000 {
		t.Fatalf("hits = %d, want 4000", st["s"].Hits)
	}
}
