// Package faultinject is the deterministic fault-injection substrate the
// chaos tests drive: named sites at the serving stack's failure boundaries
// (spill I/O, cache population, memo population, greedy strides) consult a
// seed-driven plan that decides — reproducibly — whether this particular hit
// fails, stalls, or panics.
//
// The package is built for two competing constraints:
//
//   - Zero cost in production. Every site starts with a single atomic bool
//     load; with no plan armed that is the entire cost, so sites can sit on
//     hot paths (the greedy evaluation stride) without a measurable tax.
//   - Determinism under concurrency. Faults must be reproducible enough to
//     debug a chaos-test failure from its seed. Each site keeps its own
//     atomic hit counter, and the fire/no-fire decision for hit i at site s
//     is a pure function of (plan seed, s, i) — a splitmix64 stream — so a
//     given seed always produces the same fault pattern per site, regardless
//     of how goroutines interleave across sites.
//
// Sites choose the strongest primitive their context tolerates:
//
//	Do(site)     may sleep, then return an injected error or panic. For
//	             population/build/IO boundaries whose callers propagate
//	             errors and whose goroutines contain panics.
//	Delay(site)  may only sleep. For boundaries inside worker pools where a
//	             panic would kill the process and an error has no channel —
//	             the greedy stride uses this to simulate slow compute.
//
// Injected errors unwrap to ErrInjected so tests can tell injected failures
// from organic ones.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error wraps.
var ErrInjected = errors.New("injected fault")

// The registered sites. Constants rather than ad-hoc strings so a chaos
// plan naming a site that no longer exists fails loudly at compile time.
const (
	// SiteSpillSave fires inside the atomic index-spill writer, before any
	// byte reaches the temp file — an injected full/failing disk.
	SiteSpillSave = "index.spill.save"
	// SiteSpillLoad fires on the spill-read path of a cache miss; a fired
	// error makes the load fail like a corrupt/unreadable file, forcing the
	// rebuild fallback.
	SiteSpillLoad = "index.spill.load"
	// SiteIndexPopulate fires at the head of an index-cache population
	// (after spill consultation, before the walk build).
	SiteIndexPopulate = "index.cache.populate"
	// SiteMemoPopulate fires at the head of a memo-table population.
	SiteMemoPopulate = "engine.memo.populate"
	// SiteGreedyStride fires between greedy evaluation strides. Latency-only
	// (Delay): the stride runs inside worker pools where panics are fatal
	// and errors have no channel.
	SiteGreedyStride = "greedy.stride"
)

// Error is an injected failure, carrying the site that produced it.
type Error struct {
	Site string
}

func (e *Error) Error() string { return fmt.Sprintf("faultinject: injected failure at %s", e.Site) }

// Unwrap ties every injected error to the ErrInjected sentinel.
func (e *Error) Unwrap() error { return ErrInjected }

// Fault describes what one site does when its probability fires.
type Fault struct {
	// P is the per-hit probability in [0, 1] that this fault fires. A fault
	// with P = 0 never fires; P = 1 fires on every hit.
	P float64
	// Latency is slept before the failure mode (or before returning cleanly
	// when neither Err nor Panic is set) — injected slow disk / slow stride.
	Latency time.Duration
	// Err makes Do return an injected *Error. Ignored by Delay.
	Err bool
	// Panic makes Do panic with an *Error. Ignored by Delay. Only register
	// panic faults at sites whose goroutine has a recover boundary.
	Panic bool
}

// Plan arms a set of sites. The zero Seed is a valid seed.
type Plan struct {
	Seed  uint64
	Sites map[string]Fault
}

// SiteStats counts one site's traffic under the current plan.
type SiteStats struct {
	// Hits counts site executions; Fired the subset where the fault fired.
	Hits  int64
	Fired int64
}

// site is the armed per-site state.
type site struct {
	fault Fault
	// streamSeed folds the plan seed with the site name so two sites under
	// one plan draw independent decision streams.
	streamSeed uint64
	hits       atomic.Int64
	fired      atomic.Int64
}

var (
	// enabled is the fast-path guard: false means every site is a no-op
	// after one atomic load.
	enabled atomic.Bool

	mu    sync.Mutex
	armed map[string]*site
)

// Enable arms plan and returns a disarm function. Enabling replaces any
// previously armed plan; the disarm function is idempotent and only disarms
// the plan it armed. Tests should defer the returned function.
func Enable(plan Plan) (disable func()) {
	sites := make(map[string]*site, len(plan.Sites))
	for name, f := range plan.Sites {
		sites[name] = &site{fault: f, streamSeed: plan.Seed ^ fnv64(name)}
	}
	mu.Lock()
	armed = sites
	enabled.Store(len(sites) > 0)
	mu.Unlock()
	return func() {
		mu.Lock()
		if equalMaps(armed, sites) {
			armed = nil
			enabled.Store(false)
		}
		mu.Unlock()
	}
}

// equalMaps reports whether the armed map is the exact one this Enable
// installed (pointer identity of the site states).
func equalMaps(a, b map[string]*site) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Enabled reports whether a plan is armed (test observability).
func Enabled() bool { return enabled.Load() }

// Stats snapshots per-site hit/fire counters for the armed plan; nil when
// disabled.
func Stats() map[string]SiteStats {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		return nil
	}
	out := make(map[string]SiteStats, len(armed))
	for name, s := range armed {
		out[name] = SiteStats{Hits: s.hits.Load(), Fired: s.fired.Load()}
	}
	return out
}

// lookup resolves the armed site state for name, or nil.
func lookup(name string) *site {
	mu.Lock()
	s := armed[name]
	mu.Unlock()
	return s
}

// fire records one hit at s and decides — deterministically from the plan
// seed, the site name, and the hit ordinal — whether the fault fires.
func (s *site) fire() bool {
	hit := s.hits.Add(1) - 1
	if s.fault.P <= 0 {
		return false
	}
	// splitmix64 over (streamSeed, hit): a high-quality stateless stream, so
	// the decision for hit i is independent of goroutine interleaving.
	x := splitmix64(s.streamSeed + uint64(hit)*0x9E3779B97F4A7C15)
	if s.fault.P < 1 && float64(x>>11)/(1<<53) >= s.fault.P {
		return false
	}
	s.fired.Add(1)
	return true
}

// Do executes the site: returns nil fast when no plan is armed; otherwise
// may sleep, return an injected error, or panic, per the armed fault.
func Do(name string) error {
	if !enabled.Load() {
		return nil
	}
	s := lookup(name)
	if s == nil || !s.fire() {
		return nil
	}
	if s.fault.Latency > 0 {
		time.Sleep(s.fault.Latency)
	}
	if s.fault.Panic {
		panic(&Error{Site: name})
	}
	if s.fault.Err {
		return &Error{Site: name}
	}
	return nil
}

// Delay executes the site in latency-only mode: it may sleep but never
// errors or panics, which makes it safe inside worker pools (a panic there
// would kill the process) and on paths with no error channel.
func Delay(name string) {
	if !enabled.Load() {
		return
	}
	s := lookup(name)
	if s == nil || !s.fire() {
		return
	}
	if s.fault.Latency > 0 {
		time.Sleep(s.fault.Latency)
	}
}

// splitmix64 is the SplitMix64 output function — one multiply-xor-shift
// cascade, enough to decorrelate sequential hit ordinals.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fnv64 hashes a site name (FNV-1a) into the seed fold.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
