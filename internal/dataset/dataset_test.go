package dataset

import (
	"math"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	d, err := ByName("Epinions")
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes != 75872 || d.Edges != 396026 {
		t.Fatalf("Epinions sizes %d/%d do not match Table 2", d.Nodes, d.Edges)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNamesOrder(t *testing.T) {
	want := []string{"CAGrQc", "CAHepPh", "Brightkite", "Epinions"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names %v, want paper order %v", got, want)
		}
	}
}

func TestLoadScaledSizes(t *testing.T) {
	// At scale s the stand-in has s·n nodes and ≈ s·m edges (±3%),
	// preserving the original average degree.
	for _, name := range Names() {
		d, _ := ByName(name)
		const scale = 0.05
		g, err := Load(name, scale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantN := int(float64(d.Nodes) * scale)
		if g.N() != wantN {
			t.Errorf("%s: n=%d, want %d", name, g.N(), wantN)
		}
		wantM := float64(d.Edges) * scale
		if math.Abs(float64(g.M())-wantM) > 0.03*wantM {
			t.Errorf("%s: m=%d, want ≈%.0f", name, g.M(), wantM)
		}
		if !g.IsConnected() {
			t.Errorf("%s: stand-in not connected", name)
		}
	}
}

func TestLoadFullCAGrQc(t *testing.T) {
	// Full-size generation of the smallest dataset matches Table 2.
	g, err := Load("CAGrQc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5242 {
		t.Fatalf("n=%d, want 5242", g.N())
	}
	if math.Abs(float64(g.M())-28968) > 0.01*28968 {
		t.Fatalf("m=%d, want ≈28968", g.M())
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := Load("CAGrQc", 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Load("CAGrQc", 1.5); err == nil {
		t.Error("scale >1 accepted")
	}
	if _, err := Load("bogus", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestPowerLawExact(t *testing.T) {
	g, err := PowerLawExact(2000, 11000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	if math.Abs(float64(g.M())-11000) > 0.02*11000 {
		t.Fatalf("m=%d, want ≈11000", g.M())
	}
	// Heavy-tailed: max degree far above mean.
	s := g.ComputeStats()
	if float64(s.MaxDegree) < 4*s.MeanDegree {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", s.MaxDegree, s.MeanDegree)
	}
}

func TestPowerLawExactDeterministic(t *testing.T) {
	a, _ := PowerLawExact(500, 3000, 9)
	b, _ := PowerLawExact(500, 3000, 9)
	if a.M() != b.M() {
		t.Fatalf("nondeterministic edge count: %d vs %d", a.M(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		ra, rb := a.Neighbors(u), b.Neighbors(u)
		if len(ra) != len(rb) {
			t.Fatal("nondeterministic adjacency")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("nondeterministic adjacency")
			}
		}
	}
}

func TestPowerLawExactValidation(t *testing.T) {
	if _, err := PowerLawExact(1, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := PowerLawExact(5, 100, 1); err == nil {
		t.Error("impossible m accepted")
	}
	// m below the tree floor is raised to n−1, not an error.
	g, err := PowerLawExact(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() < 9 {
		t.Fatalf("m=%d below spanning-tree floor", g.M())
	}
}

func TestScalability(t *testing.T) {
	const scale = 0.01 // 1k–10k nodes for the test
	prevN, prevM := 0, 0
	for i := 1; i <= 3; i++ {
		g, err := Scalability(i, scale)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() <= prevN || g.M() <= prevM {
			t.Fatalf("G%d not larger than G%d", i, i-1)
		}
		prevN, prevM = g.N(), g.M()
	}
	if _, err := Scalability(0, 1); err == nil {
		t.Error("index 0 accepted")
	}
	if _, err := Scalability(11, 1); err == nil {
		t.Error("index 11 accepted")
	}
	if _, err := Scalability(1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestSmallSynthetic(t *testing.T) {
	g, err := SmallSynthetic()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Fatalf("n=%d, want 1000", g.N())
	}
	if math.Abs(float64(g.M())-9956) > 100 {
		t.Fatalf("m=%d, want ≈9956 (paper's small synthetic graph)", g.M())
	}
}

func TestSummary(t *testing.T) {
	d, _ := ByName("CAGrQc")
	g, _ := Load("CAGrQc", 0.02)
	s := Summary(d, g)
	if !strings.Contains(s, "CAGrQc") || !strings.Contains(s, "paper(n=5242") {
		t.Fatalf("summary %q", s)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("sorted copy %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}
