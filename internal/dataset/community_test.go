package dataset

import (
	"math"
	"testing"
)

func TestCommunityPowerLawSizes(t *testing.T) {
	g, err := CommunityPowerLaw(3000, 18000, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3000 {
		t.Fatalf("n=%d, want 3000", g.N())
	}
	if math.Abs(float64(g.M())-18000) > 0.05*18000 {
		t.Fatalf("m=%d, want ≈18000", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("community graph must be connected")
	}
}

func TestCommunityPowerLawDeterministic(t *testing.T) {
	a, _ := CommunityPowerLaw(800, 4000, 8, 3)
	b, _ := CommunityPowerLaw(800, 4000, 8, 3)
	if a.M() != b.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.M(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		ra, rb := a.Neighbors(u), b.Neighbors(u)
		if len(ra) != len(rb) {
			t.Fatal("nondeterministic adjacency")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("nondeterministic adjacency")
			}
		}
	}
}

func TestCommunityPowerLawValidation(t *testing.T) {
	if _, err := CommunityPowerLaw(1, 0, 2, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := CommunityPowerLaw(100, 0, 0, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := CommunityPowerLaw(10, 100, 2, 1); err == nil {
		t.Error("impossible m accepted")
	}
	// c > n/2 is clamped, not rejected.
	g, err := CommunityPowerLaw(10, 15, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("clamped-c graph n=%d", g.N())
	}
}

func TestCommunityPowerLawHeavyTailed(t *testing.T) {
	g, _ := CommunityPowerLaw(2000, 12000, 10, 7)
	s := g.ComputeStats()
	if float64(s.MaxDegree) < 4*s.MeanDegree {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", s.MaxDegree, s.MeanDegree)
	}
}

// TestCommunityStructureHurtsDegreeBaseline asserts the property the
// stand-ins exist to reproduce: on a community-structured graph, the top-k
// degree nodes overlap in their random-walk catchment areas, so their
// marginal coverage is more redundant than a spread-out selection's. We
// check a direct structural proxy: the top hubs concentrate in few
// communities.
func TestCommunityStructureHurtsDegreeBaseline(t *testing.T) {
	const n, m, c = 3000, 18000, 12
	g, _ := CommunityPowerLaw(n, m, c, 11)
	top := g.TopKByDegree(10)
	// Recover community boundaries from the deterministic size rule.
	sizes := make([]int, c)
	var h float64
	for i := 0; i < c; i++ {
		h += 1 / float64(i+1)
	}
	assigned := 0
	for i := 0; i < c; i++ {
		sizes[i] = int(float64(n) / (float64(i+1) * h))
		if sizes[i] < 2 {
			sizes[i] = 2
		}
		assigned += sizes[i]
	}
	sizes[0] += n - assigned
	commOf := func(u int) int {
		off := 0
		for i, sz := range sizes {
			if u < off+sz {
				return i
			}
			off += sz
		}
		return c - 1
	}
	seen := map[int]bool{}
	for _, u := range top {
		seen[commOf(u)] = true
	}
	if len(seen) > 5 {
		t.Fatalf("top-10 hubs spread over %d communities; expected concentration in the few largest", len(seen))
	}
}

func TestCommunityStandInsClusterLikeSocialNetworks(t *testing.T) {
	// The stand-ins must have markedly higher clustering than a plain
	// power-law graph of the same size — the structural property the
	// paper's baseline comparisons depend on.
	g, err := Load("CAGrQc", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := PowerLawExact(g.N(), g.M(), 99)
	if err != nil {
		t.Fatal(err)
	}
	cCommunity := g.MeanLocalClustering()
	cPlain := plain.MeanLocalClustering()
	if cCommunity < 1.5*cPlain {
		t.Fatalf("stand-in clustering %v not clearly above plain power-law %v", cCommunity, cPlain)
	}
}

func TestLoadUsesCommunityGenerator(t *testing.T) {
	// The stand-ins must remain connected and matched in size after the
	// switch to the community generator.
	g, err := Load("CAGrQc", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("stand-in must be connected")
	}
	scale := 0.2
	wantN := int(5242 * scale)
	if g.N() != wantN {
		t.Fatalf("n=%d want %d", g.N(), wantN)
	}
}
