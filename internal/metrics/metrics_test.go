package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestExactStarHub(t *testing.T) {
	g, _ := graph.Star(10)
	res, err := Exact(g, []int{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AHT-1) > 1e-9 {
		t.Fatalf("AHT = %v, want 1", res.AHT)
	}
	if math.Abs(res.EHN-10) > 1e-9 {
		t.Fatalf("EHN = %v, want 10 (hub + 9 leaves)", res.EHN)
	}
}

func TestSampledMatchesExact(t *testing.T) {
	g, _ := graph.BarabasiAlbert(100, 3, 4)
	S := []int{0, 17, 42}
	const L = 6
	exact, err := Exact(g, S, L)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Sampled(g, S, L, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sampled.AHT-exact.AHT) > 0.1 {
		t.Fatalf("sampled AHT %v vs exact %v", sampled.AHT, exact.AHT)
	}
	if math.Abs(sampled.EHN-exact.EHN) > 0.03*float64(g.N()) {
		t.Fatalf("sampled EHN %v vs exact %v", sampled.EHN, exact.EHN)
	}
}

func TestDuplicateMembersCollapse(t *testing.T) {
	// Duplicates in S must not skew the |V\S| divisor.
	g, _ := graph.Star(6)
	a, _ := Exact(g, []int{0}, 3)
	b, _ := Exact(g, []int{0, 0, 0}, 3)
	if a.AHT != b.AHT || a.EHN != b.EHN {
		t.Fatalf("duplicates changed metrics: %v vs %v", a, b)
	}
}

func TestEmptySelection(t *testing.T) {
	// S=∅: every hitting time is pinned at L, nothing is dominated.
	g, _ := graph.Path(5)
	const L = 4
	res, err := Exact(g, nil, L)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AHT-L) > 1e-9 {
		t.Fatalf("AHT(∅) = %v, want L=%d", res.AHT, L)
	}
	if res.EHN != 0 {
		t.Fatalf("EHN(∅) = %v, want 0", res.EHN)
	}
}

func TestFullSelection(t *testing.T) {
	g, _ := graph.Path(4)
	res, err := Exact(g, []int{0, 1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.AHT != 0 {
		t.Fatalf("AHT(V) = %v, want 0 by convention", res.AHT)
	}
	if res.EHN != 4 {
		t.Fatalf("EHN(V) = %v, want n", res.EHN)
	}
}

func TestValidation(t *testing.T) {
	g, _ := graph.Path(3)
	if _, err := Exact(g, []int{5}, 2); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := Exact(g, nil, -1); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := Sampled(g, []int{-1}, 2, 10, 0); err == nil {
		t.Error("negative member accepted")
	}
	if _, err := Sampled(g, nil, 2, 0, 0); err == nil {
		t.Error("R=0 accepted")
	}
}

func TestAHTBetterForBetterSets(t *testing.T) {
	// The hub is a better single target than a leaf on a star.
	g, _ := graph.Star(12)
	hub, _ := Exact(g, []int{0}, 4)
	leaf, _ := Exact(g, []int{3}, 4)
	if hub.AHT >= leaf.AHT {
		t.Fatalf("hub AHT %v should beat leaf AHT %v", hub.AHT, leaf.AHT)
	}
	if hub.EHN <= leaf.EHN {
		t.Fatalf("hub EHN %v should beat leaf EHN %v", hub.EHN, leaf.EHN)
	}
}

func TestExactSeriesMatchesPerPrefix(t *testing.T) {
	g, _ := graph.BarabasiAlbert(60, 2, 7)
	nodes := []int{3, 14, 27, 41, 55, 9}
	ks := []int{1, 3, 6, 10} // 10 clamps to len(nodes)
	series, err := ExactSeries(g, nodes, ks, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(ks) {
		t.Fatalf("series length %d", len(series))
	}
	for i, k := range ks {
		if k > len(nodes) {
			k = len(nodes)
		}
		want, err := Exact(g, nodes[:k], 5)
		if err != nil {
			t.Fatal(err)
		}
		if series[i] != want {
			t.Fatalf("prefix %d: series %v, direct %v", k, series[i], want)
		}
	}
	// AHT must be nonincreasing, EHN nondecreasing along prefixes.
	for i := 1; i < len(series); i++ {
		if series[i].AHT > series[i-1].AHT+1e-12 {
			t.Fatal("AHT increased along greedy prefixes")
		}
		if series[i].EHN+1e-12 < series[i-1].EHN {
			t.Fatal("EHN decreased along greedy prefixes")
		}
	}
	if _, err := ExactSeries(g, nodes, []int{3, 1}, 5); err == nil {
		t.Error("decreasing ks accepted")
	}
	if _, err := ExactSeries(g, []int{99}, []int{1}, 5); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestResultString(t *testing.T) {
	s := Result{AHT: 1.5, EHN: 10}.String()
	if !strings.Contains(s, "AHT") || !strings.Contains(s, "EHN") {
		t.Fatalf("String() = %q", s)
	}
}
