// Package metrics implements the two effectiveness metrics of Section 4.1:
//
//   - AHT, the average hitting time M1(S) = Σ_{u∈V\S} h^L_{uS} / |V\S|
//     (smaller is better), and
//   - EHN, the expected number of hitting nodes M2(S) = Σ_{u∈V} E[X^L_{uS}]
//     (larger is better).
//
// The paper evaluates both metrics with the sampling algorithm (Algorithm 2)
// at R = 500; Sampled reproduces that procedure, and Exact computes the same
// quantities with the dynamic program for use on small graphs and in tests.
package metrics

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/walk"
)

// DefaultR is the sample size the paper uses when reporting metrics.
const DefaultR = 500

// Result holds both effectiveness metrics for one selection.
type Result struct {
	// AHT is the average hitting time M1(S); lower is better.
	AHT float64
	// EHN is the expected number of nodes dominated, M2(S); higher is
	// better.
	EHN float64
}

func (r Result) String() string {
	return fmt.Sprintf("AHT=%.4f EHN=%.2f", r.AHT, r.EHN)
}

func distinct(S []int, n int) (int, error) {
	seen := make(map[int]bool, len(S))
	for _, v := range S {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("metrics: set member %d out of range [0,%d): %w", v, n, graph.ErrNodeRange)
		}
		seen[v] = true
	}
	return len(seen), nil
}

// Sampled estimates both metrics with Algorithm 2 using R walks per node,
// as in the paper's experimental setup.
func Sampled(g *graph.Graph, S []int, L, R int, seed uint64) (Result, error) {
	sz, err := distinct(S, g.N())
	if err != nil {
		return Result{}, err
	}
	est, err := walk.NewEstimator(g, L, seed)
	if err != nil {
		return Result{}, err
	}
	f1, f2, err := est.EstimateF(S, R)
	if err != nil {
		return Result{}, err
	}
	return fromObjectives(g.N(), sz, L, f1, f2), nil
}

// Exact computes both metrics with the dynamic program (O(mL) time).
func Exact(g *graph.Graph, S []int, L int) (Result, error) {
	sz, err := distinct(S, g.N())
	if err != nil {
		return Result{}, err
	}
	ev, err := hitting.NewEvaluator(g, L)
	if err != nil {
		return Result{}, err
	}
	f1, err := ev.F1(S)
	if err != nil {
		return Result{}, err
	}
	f2, err := ev.F2(S)
	if err != nil {
		return Result{}, err
	}
	return fromObjectives(g.N(), sz, L, f1, f2), nil
}

// ExactSeries computes exact metrics for several prefixes of a greedy
// selection in one pass per prefix, sharing the DP evaluator. ks must be
// nondecreasing; entries larger than len(nodes) are clamped. This is the
// primitive behind the k-sweeps of Figs. 6 and 7: greedy selections for
// budget k are prefixes of larger-budget runs.
func ExactSeries(g *graph.Graph, nodes []int, ks []int, L int) ([]Result, error) {
	ev, err := hitting.NewEvaluator(g, L)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(ks))
	prev := 0
	for _, k := range ks {
		if k < prev {
			return nil, fmt.Errorf("metrics: ks must be nondecreasing, got %d after %d", k, prev)
		}
		prev = k
		if k > len(nodes) {
			k = len(nodes)
		}
		S := nodes[:k]
		sz, err := distinct(S, g.N())
		if err != nil {
			return nil, err
		}
		f1, err := ev.F1(S)
		if err != nil {
			return nil, err
		}
		f2, err := ev.F2(S)
		if err != nil {
			return nil, err
		}
		out = append(out, fromObjectives(g.N(), sz, L, f1, f2))
	}
	return out, nil
}

// fromObjectives converts objective values to metrics: under the Eq. (6)
// form, Σ_{u∈V\S} h = nL − F1, so AHT = (nL − F1)/(n−|S|); EHN = F2.
func fromObjectives(n, sizeS, L int, f1, f2 float64) Result {
	res := Result{EHN: f2}
	if rem := n - sizeS; rem > 0 {
		res.AHT = (float64(n)*float64(L) - f1) / float64(rem)
	}
	return res
}
