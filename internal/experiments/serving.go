package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/server"
)

// Serving measures the query-serving layer the batch experiments don't
// cover: end-to-end HTTP throughput of rwdomd's selection engine over a warm
// index cache, swept over client concurrency, for three request mixes:
//
//   - identical: every client issues the same selection, so the singleflight
//     layer coalesces them into (at most) one computation per wave;
//   - distinct: clients issue different budgets against the same index, so
//     each pays its own greedy loop but shares the materialized walks;
//   - gain: lightweight point queries for per-node marginal gains.
//
// The expected shape — identical >> distinct, gain >> both, and one single
// index-cache miss for the whole run — is what makes the daemon viable in
// front of heavy traffic: index construction amortizes across every request
// and duplicate bursts collapse to one selection.
func Serving(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := dataset.Load("CAGrQc", cfg.Scale)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Graphs:         map[string]*graph.Graph{"CAGrQc": g},
		DefaultWorkers: cfg.workers(),
		MaxWorkers:     cfg.workers(),
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const (
		L = 6
		R = 50
	)
	requestsPer := 24
	concurrency := []float64{1, 2, 4, 8}

	// Cold request: pays the one index build of the whole experiment.
	coldStart := time.Now()
	if err := httpPostJSON(ts.URL, "/v1/select", fmt.Sprintf(`{"graph":"CAGrQc","k":10,"L":%d,"R":%d}`, L, R)); err != nil {
		return nil, err
	}
	coldMS := float64(time.Since(coldStart)) / float64(time.Millisecond)

	identical := Series{Name: "identical select qps"}
	distinct := Series{Name: "distinct select qps"}
	gain := Series{Name: "gain qps"}
	for _, c := range concurrency {
		qps, err := qpsSweep(int(c), requestsPer, func(_ int) error {
			return httpPostJSON(ts.URL, "/v1/select", fmt.Sprintf(`{"graph":"CAGrQc","k":10,"L":%d,"R":%d}`, L, R))
		})
		if err != nil {
			return nil, err
		}
		identical.Y = append(identical.Y, qps)

		qps, err = qpsSweep(int(c), requestsPer, func(i int) error {
			return httpPostJSON(ts.URL, "/v1/select", fmt.Sprintf(`{"graph":"CAGrQc","k":%d,"L":%d,"R":%d}`, 2+i%8, L, R))
		})
		if err != nil {
			return nil, err
		}
		distinct.Y = append(distinct.Y, qps)

		qps, err = qpsSweep(int(c), requestsPer, func(i int) error {
			return httpGet(ts.URL, fmt.Sprintf("/v1/gain?graph=CAGrQc&L=%d&R=%d&set=1,2&nodes=%d", L, R, i%g.N()))
		})
		if err != nil {
			return nil, err
		}
		gain.Y = append(gain.Y, qps)
	}

	cs := srv.Cache().Stats()
	return &Report{
		ID: "serving", Title: "Query-serving throughput (rwdomd HTTP engine)",
		Params: fmt.Sprintf("n=%d m=%d L=%d R=%d workers=%d requests/level=%d",
			g.N(), g.M(), L, R, cfg.workers(), requestsPer),
		Panels: []Panel{{
			Title:  "Throughput vs client concurrency (warm index cache)",
			XLabel: "clients",
			X:      concurrency,
			Series: []Series{identical, distinct, gain},
		}},
		Notes: []string{
			fmt.Sprintf("cold first select (index build + selection): %.1f ms", coldMS),
			fmt.Sprintf("index cache: %d misses, %d hits over the whole run (build amortized across every request)", cs.Misses, cs.Hits),
			"identical selections coalesce (singleflight), distinct ones share the materialized index",
			"timings are wall-clock and machine-dependent; the invariant is misses == 1",
		},
		Elapsed: time.Since(start),
	}, nil
}
