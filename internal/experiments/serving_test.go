package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestServingReport(t *testing.T) {
	rep, err := Serving(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 1 {
		t.Fatalf("serving panels = %d, want 1", len(rep.Panels))
	}
	p := rep.Panels[0]
	if len(p.Series) != 3 {
		t.Fatalf("serving series = %d, want 3", len(p.Series))
	}
	for _, s := range p.Series {
		if len(s.Y) != len(p.X) {
			t.Fatalf("%s: %d points over %d concurrency levels", s.Name, len(s.Y), len(p.X))
		}
		for i, qps := range s.Y {
			if qps <= 0 {
				t.Fatalf("%s: non-positive qps at level %v", s.Name, p.X[i])
			}
		}
	}
	// The whole sweep must amortize one single index build.
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "1 misses") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected exactly one index-cache miss noted, got notes %q", rep.Notes)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "identical select qps") {
		t.Fatal("rendered report missing series")
	}
}
