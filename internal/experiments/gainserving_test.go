package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestGainServingReport(t *testing.T) {
	rep, err := GainServing(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 1 {
		t.Fatalf("gainserving panels = %d, want 1", len(rep.Panels))
	}
	p := rep.Panels[0]
	if len(p.Series) != 3 {
		t.Fatalf("gainserving series = %d, want 3", len(p.Series))
	}
	for _, s := range p.Series {
		if len(s.Y) != len(p.X) {
			t.Fatalf("%s: %d points over %d concurrency levels", s.Name, len(s.Y), len(p.X))
		}
		for i, qps := range s.Y {
			if qps <= 0 {
				t.Fatalf("%s: non-positive qps at level %v", s.Name, p.X[i])
			}
		}
	}
	// One miss per (problem, set) served: the warm set is populated exactly
	// once across the whole memoized sweep.
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "1 misses") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected exactly one memo miss noted, got notes %q", rep.Notes)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "memoized gain qps") {
		t.Fatal("rendered report missing series")
	}
}
