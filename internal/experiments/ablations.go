package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hitting"
)

// Ablations quantifies the design decisions of DESIGN.md §6 that have
// algorithmic (not just constant-factor) impact, as a runnable report:
//
//	(1) CELF lazy evaluation vs the paper's plain per-round scan, for the
//	    DP-based greedy algorithm — gain evaluations and wall-clock;
//	(2) the inverted index (Algorithm 6) vs per-round re-sampling (the
//	    sampling-based greedy) — wall-clock at equal R, plus solution quality
//	    on the exact objective;
//	(3) stochastic greedy vs CELF on the index — evaluations vs quality.
//
// The two memory-layout ablations (CSR vs adjacency lists, generation-stamp
// visited resets) are microbenchmarks and live in bench_test.go.
func Ablations(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := fig25Graph(cfg)
	if err != nil {
		return nil, err
	}
	const L = 5
	k := scaleK(20, g.N())
	rep := &Report{
		ID: "ablations", Title: "Design-decision ablations (DESIGN.md §6)",
		Params: fmt.Sprintf("n=%d m=%d k=%d L=%d", g.N(), g.M(), k, L),
	}
	ev, err := hitting.NewEvaluator(g, L)
	if err != nil {
		return nil, err
	}
	exactF1 := func(S []int) float64 {
		v, err := ev.F1(S)
		if err != nil {
			return 0
		}
		return v
	}

	// (1) Lazy vs plain DP greedy.
	plain, err := core.DPF1(g, core.Options{K: k, L: L})
	if err != nil {
		return nil, err
	}
	lazy, err := core.DPF1(g, core.Options{K: k, L: L, Lazy: true})
	if err != nil {
		return nil, err
	}
	t1 := Table{
		Title:   "(1) CELF lazy evaluation vs plain scan (DP-based greedy, identical selections)",
		Columns: []string{"driver", "gain evals", "time(s)", "exact F1"},
		Rows: [][]string{
			{"plain", fmt.Sprint(plain.Evaluations), fmt.Sprintf("%.3f", secs(plain.SelectTime)), fmt.Sprintf("%.1f", exactF1(plain.Nodes))},
			{"lazy (CELF)", fmt.Sprint(lazy.Evaluations), fmt.Sprintf("%.3f", secs(lazy.SelectTime)), fmt.Sprintf("%.1f", exactF1(lazy.Nodes))},
		},
	}

	// (2) Inverted index vs per-round re-sampling at equal R.
	const R = 40
	approx, err := core.ApproxF1(g, core.Options{K: k, L: L, R: R, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	resample, err := core.SampleF1(g, core.Options{K: k, L: L, R: R, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	t2 := Table{
		Title:   fmt.Sprintf("(2) Inverted index (Alg. 6) vs per-round re-sampling, R=%d", R),
		Columns: []string{"algorithm", "time(s)", "exact F1"},
		Rows: [][]string{
			{"inverted index", fmt.Sprintf("%.3f", secs(approx.BuildTime+approx.SelectTime)), fmt.Sprintf("%.1f", exactF1(approx.Nodes))},
			{"re-sampling", fmt.Sprintf("%.3f", secs(resample.BuildTime+resample.SelectTime)), fmt.Sprintf("%.1f", exactF1(resample.Nodes))},
		},
	}

	// (3) Stochastic greedy vs CELF over the same index machinery.
	celf, err := core.ApproxF1(g, core.Options{K: k, L: L, R: R, Seed: cfg.Seed, Lazy: true})
	if err != nil {
		return nil, err
	}
	stoch, err := core.ApproxStochastic(g, core.Options{K: k, L: L, R: R, Seed: cfg.Seed}, 1, 0.1)
	if err != nil {
		return nil, err
	}
	t3 := Table{
		Title:   "(3) Stochastic greedy vs CELF over the inverted index (eps=0.1)",
		Columns: []string{"driver", "gain evals", "exact F1"},
		Rows: [][]string{
			{"CELF", fmt.Sprint(celf.Evaluations), fmt.Sprintf("%.1f", exactF1(celf.Nodes))},
			{"stochastic", fmt.Sprint(stoch.Evaluations), fmt.Sprintf("%.1f", exactF1(stoch.Nodes))},
		},
	}

	rep.Tables = []Table{t1, t2, t3}
	rep.Notes = []string{
		"expected: lazy matches plain's selection with far fewer evaluations",
		"expected: the index is much faster than re-sampling at equal quality (the paper's central design point)",
		"expected: stochastic's ~(n/k)ln(1/eps) evals/round beat the plain scan's n and are k-independent;" +
			" CELF can still win at moderate k (as here) — stochastic pays off when k is large",
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Extra1OptimalityRatio empirically validates the 1 − 1/e guarantee: on
// small graphs it compares greedy selections against the exhaustively
// optimal set for k = 2 and 3. Not a paper figure; it substantiates the
// approximation claims the paper invokes from Nemhauser et al.
func Extra1OptimalityRatio(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	const L = 4
	t := Table{
		Title:   "Greedy objective / exhaustive optimum (must be ≥ 1−1/e ≈ 0.632)",
		Columns: []string{"graph", "k", "DPF1 ratio", "DPF2 ratio"},
	}
	graphs := []struct {
		name string
		n, m int
		seed uint64
	}{
		{"powerlaw-30", 30, 90, 3},
		{"powerlaw-40", 40, 150, 4},
		{"community-40", 40, 160, 5},
	}
	worst := 1.0
	for _, spec := range graphs {
		g, err := dataset.PowerLawExact(spec.n, spec.m, spec.seed)
		if err != nil {
			return nil, err
		}
		ev, err := hitting.NewEvaluator(g, L)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{2, 3} {
			dp1, err := core.DPF1(g, core.Options{K: k, L: L})
			if err != nil {
				return nil, err
			}
			dp2, err := core.DPF2(g, core.Options{K: k, L: L})
			if err != nil {
				return nil, err
			}
			opt1, err := exhaustiveBest(g.N(), k, func(S []int) (float64, error) { return ev.F1(S) })
			if err != nil {
				return nil, err
			}
			opt2, err := exhaustiveBest(g.N(), k, func(S []int) (float64, error) { return ev.F2(S) })
			if err != nil {
				return nil, err
			}
			v1, _ := ev.F1(dp1.Nodes)
			v2, _ := ev.F2(dp2.Nodes)
			r1, r2 := v1/opt1, v2/opt2
			if r1 < worst {
				worst = r1
			}
			if r2 < worst {
				worst = r2
			}
			t.Rows = append(t.Rows, []string{
				spec.name, fmt.Sprint(k),
				fmt.Sprintf("%.4f", r1), fmt.Sprintf("%.4f", r2),
			})
		}
	}
	return &Report{
		ID: "extra1", Title: "Empirical validation of the greedy approximation guarantee",
		Params:  fmt.Sprintf("L=%d, exhaustive optimum over all C(n,k) sets", L),
		Tables:  []Table{t},
		Notes:   []string{fmt.Sprintf("worst observed ratio %.4f (bound: 0.6321)", worst)},
		Elapsed: time.Since(start),
	}, nil
}

// exhaustiveBest evaluates obj over every k-subset of [0, n) and returns the
// maximum. Exponential; small n and k only.
func exhaustiveBest(n, k int, obj func([]int) (float64, error)) (float64, error) {
	best := 0.0
	S := make([]int, k)
	var rec func(start, depth int) error
	rec = func(start, depth int) error {
		if depth == k {
			v, err := obj(S)
			if err != nil {
				return err
			}
			if v > best {
				best = v
			}
			return nil
		}
		for u := start; u < n; u++ {
			S[depth] = u
			if err := rec(u+1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return 0, err
	}
	return best, nil
}
