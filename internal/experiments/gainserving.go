package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/server"
)

// GainServing is the A/B benchmark arm for the memoized gain read path: two
// identically configured daemons over the same graph — one with the memo
// cache (the default), one with it disabled (the fresh-D-table path every
// request paid before memoization) — serve the same warm-set /v1/gain and
// /v1/topgains traffic, swept over client concurrency.
//
// The expected shape: after the first request for a seed set populates its
// frozen table, every later gain request is a pure read — no n·R allocation,
// no set replay — and the memo stats show exactly one miss per
// (problem, set) with everything else hits. The throughput gap grows with
// n·R: at small scales loopback-HTTP overhead dominates both arms and the
// curves converge, while the per-request compute ratio itself is isolated
// by BenchmarkWarmGainRequest (which drives the handler stack directly).
// Parity of the answers is locked down by the server package's parity test
// suite; this experiment measures what the memo buys end to end.
func GainServing(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := dataset.Load("CAGrQc", cfg.Scale)
	if err != nil {
		return nil, err
	}
	newServer := func(disableMemo bool) (*server.Server, *httptest.Server, error) {
		srv, err := server.New(server.Config{
			Graphs:         map[string]*graph.Graph{"CAGrQc": g},
			DefaultWorkers: cfg.workers(),
			MaxWorkers:     cfg.workers(),
			DisableMemo:    disableMemo,
		})
		if err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv.Handler()), nil
	}
	memoSrv, memoTS, err := newServer(false)
	if err != nil {
		return nil, err
	}
	defer memoSrv.Close()
	defer memoTS.Close()
	freshSrv, freshTS, err := newServer(true)
	if err != nil {
		return nil, err
	}
	defer freshSrv.Close()
	defer freshTS.Close()

	const (
		L       = 6
		R       = 100
		warmSet = "1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16"
	)
	requestsPer := 32
	concurrency := []float64{1, 2, 4, 8}

	gainPath := func(i int) string {
		return fmt.Sprintf("/v1/gain?graph=CAGrQc&L=%d&R=%d&set=%s&nodes=%d", L, R, warmSet, i%g.N())
	}
	topPath := fmt.Sprintf("/v1/topgains?graph=CAGrQc&L=%d&R=%d&set=%s&b=10", L, R, warmSet)

	// Warm both daemons: one request builds the index and (memo side) the
	// warm set's frozen table.
	coldStart := time.Now()
	if err := httpGet(memoTS.URL, gainPath(0)); err != nil {
		return nil, err
	}
	coldMS := float64(time.Since(coldStart)) / float64(time.Millisecond)
	if err := httpGet(freshTS.URL, gainPath(0)); err != nil {
		return nil, err
	}

	memoGain := Series{Name: "memoized gain qps"}
	freshGain := Series{Name: "fresh gain qps"}
	memoTop := Series{Name: "memoized topgains qps"}
	for _, c := range concurrency {
		qps, err := qpsSweep(int(c), requestsPer, func(i int) error { return httpGet(memoTS.URL, gainPath(i)) })
		if err != nil {
			return nil, err
		}
		memoGain.Y = append(memoGain.Y, qps)

		qps, err = qpsSweep(int(c), requestsPer, func(i int) error { return httpGet(freshTS.URL, gainPath(i)) })
		if err != nil {
			return nil, err
		}
		freshGain.Y = append(freshGain.Y, qps)

		qps, err = qpsSweep(int(c), requestsPer, func(_ int) error { return httpGet(memoTS.URL, topPath) })
		if err != nil {
			return nil, err
		}
		memoTop.Y = append(memoTop.Y, qps)
	}

	speedup := make([]float64, len(concurrency))
	for i := range speedup {
		speedup[i] = memoGain.Y[i] / freshGain.Y[i]
	}
	ms := memoSrv.MemoStats()
	return &Report{
		ID: "gainserving", Title: "Memoized gain serving vs fresh D-table path",
		Params: fmt.Sprintf("n=%d m=%d L=%d R=%d workers=%d |set|=16 requests/level=%d",
			g.N(), g.M(), L, R, cfg.workers(), requestsPer),
		Panels: []Panel{{
			Title:  "Warm-set /v1/gain and /v1/topgains throughput vs client concurrency",
			XLabel: "clients",
			X:      concurrency,
			Series: []Series{memoGain, freshGain, memoTop},
		}},
		Notes: []string{
			fmt.Sprintf("cold first gain (index build + memo populate): %.1f ms", coldMS),
			fmt.Sprintf("memoized/fresh gain speedup per level: %.1fx %.1fx %.1fx %.1fx",
				speedup[0], speedup[1], speedup[2], speedup[3]),
			fmt.Sprintf("memo cache: %d misses, %d hits, %d empty hits over the run (one table materialization for the whole warm set)",
				ms.Misses, ms.Hits, ms.EmptyHits),
			"fresh path re-materializes an n·R D-table and replays the set per request; memoized path reads one frozen table",
		},
		Elapsed: time.Since(start),
	}, nil
}
