// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each runner returns a Report containing the same
// series/rows the paper plots; Render prints them as aligned text tables.
//
// Runners accept a Config whose Scale fields shrink the workloads for quick
// runs on laptop hardware; Scale = 1 reproduces the paper's sizes. Because
// greedy selections for budget k are prefixes of larger-budget runs, each
// k-sweep runs every algorithm once at the largest k and evaluates metric
// values on prefixes.
//
// Metrics here are computed exactly with the dynamic program rather than
// with the R=500 sampling the paper uses: at these graph sizes the DP is
// cheap and removes metric noise from the comparison (the estimator itself
// is validated against the DP in the test suite).
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies the Table 2 dataset sizes, in (0, 1]. 1 is
	// paper-sized.
	Scale float64
	// ScaleG multiplies the Fig. 9 scalability suite sizes (G_i has
	// i·100k·ScaleG nodes and i·1M·ScaleG edges).
	ScaleG float64
	// Seed drives all sampling.
	Seed uint64
	// Workers shards index construction and approximate-greedy gain
	// evaluations; 0 means all available cores. Reported selections and
	// metrics are identical for every value — only timings change.
	Workers int
}

// DefaultConfig returns a configuration sized for a quick single-machine
// run (a few minutes for the full suite).
func DefaultConfig() Config {
	return Config{Scale: 0.25, ScaleG: 0.02, Seed: 1}
}

// FullConfig returns the paper-sized configuration.
func FullConfig() Config {
	return Config{Scale: 1, ScaleG: 1, Seed: 1}
}

// workers resolves the Workers knob, defaulting to all available cores.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiments: Scale %v outside (0,1]", c.Scale)
	}
	if c.ScaleG <= 0 || c.ScaleG > 1 {
		return fmt.Errorf("experiments: ScaleG %v outside (0,1]", c.ScaleG)
	}
	return nil
}

// Series is one labeled curve: Y values over the shared X grid of its panel.
type Series struct {
	Name string
	Y    []float64
}

// Panel is one sub-plot of a figure: a shared X grid and one or more series
// over it.
type Panel struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series
}

// Table is free-form tabular output (used by Table 2).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Report is the result of one experiment runner.
type Report struct {
	ID      string // e.g. "fig6"
	Title   string
	Params  string
	Notes   []string
	Panels  []Panel
	Tables  []Table
	Elapsed time.Duration
}

// Render writes the report as aligned text tables.
func (r *Report) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Params != "" {
		fmt.Fprintf(&b, "params: %s\n", r.Params)
	}
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(&b, "\n%s\n", t.Title)
		}
		renderTable(&b, t.Columns, t.Rows)
	}
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n%s\n", p.Title)
		cols := make([]string, 0, len(p.Series)+1)
		cols = append(cols, p.XLabel)
		for _, s := range p.Series {
			cols = append(cols, s.Name)
		}
		rows := make([][]string, len(p.X))
		for i, x := range p.X {
			row := make([]string, 0, len(cols))
			row = append(row, trimFloat(x))
			for _, s := range p.Series {
				if i < len(s.Y) {
					row = append(row, trimFloat(s.Y[i]))
				} else {
					row = append(row, "-")
				}
			}
			rows[i] = row
		}
		renderTable(&b, cols, rows)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	fmt.Fprintf(&b, "elapsed: %v\n", r.Elapsed.Round(time.Millisecond))
	_, err := io.WriteString(w, b.String())
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

func renderTable(b *strings.Builder, cols []string, rows [][]string) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}

// Runner couples an experiment ID with its function.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table2", "Summary of the datasets", Table2},
		{"fig2", "Effectiveness of DPF1 vs ApproxF1", Fig2},
		{"fig3", "Effectiveness of DPF2 vs ApproxF2", Fig3},
		{"fig4", "Running time: DP-based vs approximate greedy", Fig4},
		{"fig5", "Running time as a function of R", Fig5},
		{"fig6", "AHT of different algorithms across datasets", Fig6},
		{"fig7", "EHN of different algorithms across datasets", Fig7},
		{"fig8", "Running time vs k and L (Epinions)", Fig8},
		{"fig9", "Scalability on synthetic graphs G1..G10", Fig9},
		{"fig10", "Effect of parameter L", Fig10},
		{"ablations", "Design-decision ablations (DESIGN.md §6)", Ablations},
		{"extra1", "Empirical validation of the greedy approximation guarantee", Extra1OptimalityRatio},
		{"extra2", "Estimator accuracy vs Hoeffding sample-size bounds", Extra2EstimatorAccuracy},
		{"serving", "Query-serving throughput (rwdomd HTTP engine)", Serving},
		{"gainserving", "Memoized gain serving vs fresh D-table path", GainServing},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
