package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Shared HTTP drivers for the serving experiments (serving.go,
// gainserving.go): issue requests against an rwdomd handler under test and
// measure aggregate throughput.

// httpGet issues one GET and fails on any non-200, surfacing the server's
// JSON error message.
func httpGet(base, path string) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %d %s", path, resp.StatusCode, e.Error)
	}
	return nil
}

// httpPostJSON posts a JSON body and fails on any non-200, surfacing the
// server's JSON error message.
func httpPostJSON(base, path, body string) error {
	resp, err := http.Post(base+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %d %s", path, resp.StatusCode, e.Error)
	}
	return nil
}

// qpsSweep issues total requests, striped across clients concurrent
// goroutines (request i goes to client i mod clients), and returns the
// aggregate queries/sec. The first error aborts that client's stripe and
// fails the sweep.
func qpsSweep(clients, total int, request func(i int) error) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, clients)
	t0 := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := cl; i < total; i += clients {
				if err := request(i); err != nil {
					errs[cl] = err
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(total) / time.Since(t0).Seconds(), nil
}
