package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/metrics"
)

// Shared paper parameters (Section 4).
var (
	rGrid = []float64{50, 100, 150, 200, 250} // Figs. 2, 3, 5
	kGrid = []float64{20, 40, 60, 80, 100}    // Figs. 6, 7, 8(a)
	lGrid = []float64{2, 4, 6, 8, 10}         // Figs. 8(b), 10
)

func secs(d time.Duration) float64 { return d.Seconds() }

// fig25Graph returns the small synthetic power-law graph of Figs. 2–5
// (paper: n=1000, m=9956), shrunk below the default scale for quick runs.
func fig25Graph(cfg Config) (*graph.Graph, error) {
	f := 4 * cfg.Scale // cfg.Scale 0.25 (the default) reproduces the paper's n=1000
	if f > 1 {
		f = 1
	}
	n := int(1000 * f)
	if n < 100 {
		n = 100
	}
	m := int(9956 * f)
	return dataset.PowerLawExact(n, m, 0x2345)
}

// scaleK clamps a budget to at most half the graph, keeping tiny quick-run
// graphs meaningful.
func scaleK(k, n int) int {
	if k > n/2 {
		return n / 2
	}
	return k
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

// Table2 regenerates the dataset summary: the paper's reported sizes next to
// the generated stand-in sizes and their degree statistics.
func Table2(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	t := Table{
		Title:   "Summary of the datasets (paper sizes vs generated stand-ins)",
		Columns: []string{"Name", "paper n", "paper m", "standin n", "standin m", "max deg", "gini", "connected"},
	}
	for _, d := range dataset.Paper {
		g, err := dataset.Load(d.Name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		s := g.ComputeStats()
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprint(d.Nodes), fmt.Sprint(d.Edges),
			fmt.Sprint(s.Nodes), fmt.Sprint(s.Edges),
			fmt.Sprint(s.MaxDegree), fmt.Sprintf("%.3f", s.DegreeGini),
			fmt.Sprint(s.Components == 1),
		})
	}
	return &Report{
		ID: "table2", Title: "Summary of the datasets",
		Params:  fmt.Sprintf("scale=%.2f", cfg.Scale),
		Tables:  []Table{t},
		Notes:   []string{"SNAP originals are offline; stand-ins are deterministic power-law graphs with matched sizes (DESIGN.md §5)"},
		Elapsed: time.Since(start),
	}, nil
}

// ---------------------------------------------------------------------------
// Figs. 2 and 3: DP greedy vs approximate greedy effectiveness vs R
// ---------------------------------------------------------------------------

func figEffectivenessVsR(cfg Config, id, title string, dp, approx func(*graph.Graph, core.Options) (*core.Selection, error)) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := fig25Graph(cfg)
	if err != nil {
		return nil, err
	}
	k := scaleK(30, g.N())
	rep := &Report{
		ID: id, Title: title,
		Params: fmt.Sprintf("n=%d m=%d k=%d R∈%v L∈{5,10}", g.N(), g.M(), k, rGrid),
		Notes: []string{
			"DP curve is flat: it does not depend on R",
			"expected shape: approximate curves converge to the DP line; at R>=100 the difference is negligible",
		},
	}
	for _, L := range []int{5, 10} {
		dpSel, err := dp(g, core.Options{K: k, L: L, Seed: cfg.Seed, Lazy: true})
		if err != nil {
			return nil, err
		}
		dpM, err := metrics.Exact(g, dpSel.Nodes, L)
		if err != nil {
			return nil, err
		}
		var ahtDP, ehnDP, ahtAp, ehnAp []float64
		for ri, R := range rGrid {
			apSel, err := approx(g, core.Options{K: k, L: L, R: int(R), Seed: cfg.Seed + uint64(ri), Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			apM, err := metrics.Exact(g, apSel.Nodes, L)
			if err != nil {
				return nil, err
			}
			ahtDP = append(ahtDP, dpM.AHT)
			ehnDP = append(ehnDP, dpM.EHN)
			ahtAp = append(ahtAp, apM.AHT)
			ehnAp = append(ehnAp, apM.EHN)
		}
		dpName, apName := dpSel.Algorithm, "Approx"
		rep.Panels = append(rep.Panels,
			Panel{Title: fmt.Sprintf("AHT vs R (L=%d)", L), XLabel: "R", X: rGrid,
				Series: []Series{{Name: dpName, Y: ahtDP}, {Name: apName, Y: ahtAp}}},
			Panel{Title: fmt.Sprintf("EHN vs R (L=%d)", L), XLabel: "R", X: rGrid,
				Series: []Series{{Name: dpName, Y: ehnDP}, {Name: apName, Y: ehnAp}}},
		)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Fig2 compares the effectiveness of DPF1 and ApproxF1 under both metrics as
// a function of the sample size R, for L = 5 and 10 (paper Fig. 2).
func Fig2(cfg Config) (*Report, error) {
	return figEffectivenessVsR(cfg, "fig2", "Effectiveness of DPF1 vs ApproxF1", core.DPF1, core.ApproxF1)
}

// Fig3 compares DPF2 and ApproxF2 (paper Fig. 3).
func Fig3(cfg Config) (*Report, error) {
	return figEffectivenessVsR(cfg, "fig3", "Effectiveness of DPF2 vs ApproxF2", core.DPF2, core.ApproxF2)
}

// ---------------------------------------------------------------------------
// Fig. 4: running time, DP-based vs approximate greedy
// ---------------------------------------------------------------------------

// Fig4 measures wall-clock running time of the four algorithms on the small
// synthetic graph, at L = 5 and 10 with R = 250 for the approximate
// algorithms (paper Fig. 4). The DP algorithms use the plain (non-lazy)
// driver here, matching the paper's complexity claim; the lazy ablation
// bench quantifies how much CELF narrows the gap.
func Fig4(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := fig25Graph(cfg)
	if err != nil {
		return nil, err
	}
	k := scaleK(30, g.N())
	rep := &Report{
		ID: "fig4", Title: "Running time: DP-based vs approximate greedy",
		Params: fmt.Sprintf("n=%d m=%d k=%d R=250", g.N(), g.M(), k),
		Notes: []string{
			"expected shape: DP-based greedy is orders of magnitude slower than the approximate greedy",
			"expected shape: L=10 roughly doubles every running time vs L=5",
		},
	}
	type algo struct {
		name string
		run  func() (*core.Selection, error)
	}
	for _, L := range []int{5, 10} {
		opts := core.Options{K: k, L: L, R: 250, Seed: cfg.Seed, Workers: cfg.Workers}
		algos := []algo{
			{"DPF1", func() (*core.Selection, error) { return core.DPF1(g, opts) }},
			{"ApproxF1", func() (*core.Selection, error) { return core.ApproxF1(g, opts) }},
			{"DPF2", func() (*core.Selection, error) { return core.DPF2(g, opts) }},
			{"ApproxF2", func() (*core.Selection, error) { return core.ApproxF2(g, opts) }},
		}
		t := Table{
			Title:   fmt.Sprintf("Running time (seconds), L=%d", L),
			Columns: []string{"algorithm", "build(s)", "select(s)", "total(s)"},
		}
		for _, a := range algos {
			sel, err := a.run()
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				a.name,
				fmt.Sprintf("%.3f", secs(sel.BuildTime)),
				fmt.Sprintf("%.3f", secs(sel.SelectTime)),
				fmt.Sprintf("%.3f", secs(sel.BuildTime+sel.SelectTime)),
			})
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ---------------------------------------------------------------------------
// Fig. 5: approximate greedy running time vs R
// ---------------------------------------------------------------------------

// Fig5 measures ApproxF1/ApproxF2 running time as a function of R at L = 5
// and 10 (paper Fig. 5). Expected shape: linear in R.
func Fig5(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := fig25Graph(cfg)
	if err != nil {
		return nil, err
	}
	k := scaleK(30, g.N())
	rep := &Report{
		ID: "fig5", Title: "Running time as a function of R",
		Params: fmt.Sprintf("n=%d m=%d k=%d", g.N(), g.M(), k),
		Notes:  []string{"expected shape: running time grows linearly with R"},
	}
	for _, L := range []int{5, 10} {
		var y1, y2 []float64
		for ri, R := range rGrid {
			opts := core.Options{K: k, L: L, R: int(R), Seed: cfg.Seed + uint64(ri), Workers: cfg.Workers}
			s1, err := core.ApproxF1(g, opts)
			if err != nil {
				return nil, err
			}
			s2, err := core.ApproxF2(g, opts)
			if err != nil {
				return nil, err
			}
			y1 = append(y1, secs(s1.BuildTime+s1.SelectTime))
			y2 = append(y2, secs(s2.BuildTime+s2.SelectTime))
		}
		rep.Panels = append(rep.Panels, Panel{
			Title: fmt.Sprintf("Running time (s) vs R (L=%d)", L), XLabel: "R", X: rGrid,
			Series: []Series{{Name: "ApproxF1", Y: y1}, {Name: "ApproxF2", Y: y2}},
		})
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ---------------------------------------------------------------------------
// Figs. 6 and 7: effectiveness across datasets vs k
// ---------------------------------------------------------------------------

// effectivenessSweep runs the four algorithms of Figs. 6/7 on one dataset at
// the largest budget, then evaluates both exact metrics on budget prefixes.
func effectivenessSweep(g *graph.Graph, L, R, workers int, seed uint64, ks []float64) (aht, ehn map[string][]float64, err error) {
	kmax := scaleK(int(ks[len(ks)-1]), g.N())
	type result struct {
		name  string
		nodes []int
	}
	var runs []result

	deg, err := core.Degree(g, kmax)
	if err != nil {
		return nil, nil, err
	}
	runs = append(runs, result{"Degree", deg.Nodes})
	dom, err := core.Dominate(g, kmax)
	if err != nil {
		return nil, nil, err
	}
	runs = append(runs, result{"Dominate", dom.Nodes})

	// One index serves both approximate algorithms (Lazy keeps k=100 cheap).
	ix, err := index.BuildWorkers(g, L, R, seed, workers)
	if err != nil {
		return nil, nil, err
	}
	ap1, err := core.ApproxWithIndexWorkers(ix, index.Problem1, kmax, true, workers)
	if err != nil {
		return nil, nil, err
	}
	runs = append(runs, result{"ApproxF1", ap1.Nodes})
	ap2, err := core.ApproxWithIndexWorkers(ix, index.Problem2, kmax, true, workers)
	if err != nil {
		return nil, nil, err
	}
	runs = append(runs, result{"ApproxF2", ap2.Nodes})

	aht = map[string][]float64{}
	ehn = map[string][]float64{}
	kInts := make([]int, len(ks))
	for i, kf := range ks {
		kInts[i] = scaleK(int(kf), g.N())
	}
	for _, run := range runs {
		series, err := metrics.ExactSeries(g, run.nodes, kInts, L)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range series {
			aht[run.name] = append(aht[run.name], m.AHT)
			ehn[run.name] = append(ehn[run.name], m.EHN)
		}
	}
	return aht, ehn, nil
}

func figAcrossDatasets(cfg Config, id, title, metric string) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	const L, R = 6, 100
	rep := &Report{
		ID: id, Title: title,
		Params: fmt.Sprintf("L=%d R=%d k∈%v scale=%.2f", L, R, kGrid, cfg.Scale),
	}
	if metric == "AHT" {
		rep.Notes = []string{"expected shape: ApproxF1 lowest (best), then ApproxF2, then the baselines; gap grows with k"}
	} else {
		rep.Notes = []string{"expected shape: ApproxF2 highest (best), then ApproxF1, then the baselines; gap grows with k"}
	}
	order := []string{"Degree", "Dominate", "ApproxF1", "ApproxF2"}
	for _, d := range dataset.Paper {
		g, err := dataset.Load(d.Name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		aht, ehn, err := effectivenessSweep(g, L, R, cfg.workers(), cfg.Seed, kGrid)
		if err != nil {
			return nil, err
		}
		src := aht
		if metric == "EHN" {
			src = ehn
		}
		panel := Panel{Title: fmt.Sprintf("%s vs k (%s, n=%d m=%d)", metric, d.Name, g.N(), g.M()), XLabel: "k", X: kGrid}
		for _, name := range order {
			panel.Series = append(panel.Series, Series{Name: name, Y: src[name]})
		}
		rep.Panels = append(rep.Panels, panel)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Fig6 compares AHT of Degree, Dominate, ApproxF1 and ApproxF2 as a function
// of k over the four datasets (paper Fig. 6; L=6, R=100).
func Fig6(cfg Config) (*Report, error) {
	return figAcrossDatasets(cfg, "fig6", "Comparison of AHT of different algorithms", "AHT")
}

// Fig7 compares EHN of the four algorithms (paper Fig. 7).
func Fig7(cfg Config) (*Report, error) {
	return figAcrossDatasets(cfg, "fig7", "Comparison of EHN of different algorithms", "EHN")
}

// ---------------------------------------------------------------------------
// Fig. 8: running time vs k and vs L on Epinions
// ---------------------------------------------------------------------------

// Fig8 measures running time of the four algorithms on the Epinions
// stand-in: panel (a) sweeps k at L=6, panel (b) sweeps L at k=100 (paper
// Fig. 8; R=100). Expected shape: the approximate greedy algorithms stay
// within a small constant factor (≈2.5–2.7× in the paper) of the baselines.
func Fig8(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	const R = 100
	g, err := dataset.Load("Epinions", cfg.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID: "fig8", Title: "Running time vs k and L (Epinions)",
		Params: fmt.Sprintf("n=%d m=%d R=%d", g.N(), g.M(), R),
		Notes:  []string{"approximate greedy time includes index construction, per the paper"},
	}

	timeAll := func(k, L int) (map[string]float64, error) {
		out := map[string]float64{}
		deg, err := core.Degree(g, k)
		if err != nil {
			return nil, err
		}
		out["Degree"] = secs(deg.BuildTime + deg.SelectTime)
		dom, err := core.Dominate(g, k)
		if err != nil {
			return nil, err
		}
		out["Dominate"] = secs(dom.BuildTime + dom.SelectTime)
		opts := core.Options{K: k, L: L, R: R, Seed: cfg.Seed, Lazy: true, Workers: cfg.Workers}
		a1, err := core.ApproxF1(g, opts)
		if err != nil {
			return nil, err
		}
		out["ApproxF1"] = secs(a1.BuildTime + a1.SelectTime)
		a2, err := core.ApproxF2(g, opts)
		if err != nil {
			return nil, err
		}
		out["ApproxF2"] = secs(a2.BuildTime + a2.SelectTime)
		return out, nil
	}

	order := []string{"Degree", "Dominate", "ApproxF1", "ApproxF2"}
	series := map[string][]float64{}
	for _, kf := range kGrid {
		times, err := timeAll(scaleK(int(kf), g.N()), 6)
		if err != nil {
			return nil, err
		}
		for _, name := range order {
			series[name] = append(series[name], times[name])
		}
	}
	panelA := Panel{Title: "(a) Running time (s) vs k, L=6", XLabel: "k", X: kGrid}
	for _, name := range order {
		panelA.Series = append(panelA.Series, Series{Name: name, Y: series[name]})
	}

	series = map[string][]float64{}
	for _, lf := range lGrid {
		times, err := timeAll(scaleK(100, g.N()), int(lf))
		if err != nil {
			return nil, err
		}
		for _, name := range order {
			series[name] = append(series[name], times[name])
		}
	}
	panelB := Panel{Title: "(b) Running time (s) vs L, k=100", XLabel: "L", X: lGrid}
	for _, name := range order {
		panelB.Series = append(panelB.Series, Series{Name: name, Y: series[name]})
	}
	rep.Panels = []Panel{panelA, panelB}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ---------------------------------------------------------------------------
// Fig. 9: scalability
// ---------------------------------------------------------------------------

// Fig9 measures ApproxF1/ApproxF2 running time over the scalability suite
// G1..G10 (paper Fig. 9; k=100, L=6, R=100). Expected shape: linear in both
// the node count and the edge count.
func Fig9(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	const L, R = 6, 100
	var nodes, edges, y1, y2 []float64
	for i := 1; i <= 10; i++ {
		g, err := dataset.Scalability(i, cfg.ScaleG)
		if err != nil {
			return nil, err
		}
		k := scaleK(100, g.N())
		opts := core.Options{K: k, L: L, R: R, Seed: cfg.Seed, Lazy: true, Workers: cfg.Workers}
		s1, err := core.ApproxF1(g, opts)
		if err != nil {
			return nil, err
		}
		s2, err := core.ApproxF2(g, opts)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, float64(g.N()))
		edges = append(edges, float64(g.M()))
		y1 = append(y1, secs(s1.BuildTime+s1.SelectTime))
		y2 = append(y2, secs(s2.BuildTime+s2.SelectTime))
	}
	rep := &Report{
		ID: "fig9", Title: "Scalability on synthetic graphs G1..G10",
		Params: fmt.Sprintf("k=100 L=%d R=%d scaleG=%.3f", L, R, cfg.ScaleG),
		Notes:  []string{"expected shape: running time linear in number of nodes and edges"},
		Panels: []Panel{
			{Title: "Running time (s) vs number of nodes", XLabel: "nodes", X: nodes,
				Series: []Series{{Name: "ApproxF1", Y: y1}, {Name: "ApproxF2", Y: y2}}},
			{Title: "Running time (s) vs number of edges", XLabel: "edges", X: edges,
				Series: []Series{{Name: "ApproxF1", Y: y1}, {Name: "ApproxF2", Y: y2}}},
		},
		Elapsed: time.Since(start),
	}
	return rep, nil
}

// ---------------------------------------------------------------------------
// Fig. 10: effect of L
// ---------------------------------------------------------------------------

// Fig10 sweeps L on the CAGrQc and CAHepPh stand-ins at k=60 and reports
// both metrics for the four algorithms (paper Fig. 10; R=100). Expected
// shapes: AHT and EHN grow with L; the greedy/baseline gap widens with L.
func Fig10(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	const R = 100
	rep := &Report{
		ID: "fig10", Title: "Effect of parameter L",
		Params: fmt.Sprintf("k=60 R=%d L∈%v scale=%.2f", R, lGrid, cfg.Scale),
		Notes:  []string{"expected shape: both metrics increase with L; greedy/baseline gap grows with L"},
	}
	order := []string{"Degree", "Dominate", "ApproxF1", "ApproxF2"}
	for _, name := range []string{"CAGrQc", "CAHepPh"} {
		g, err := dataset.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		k := scaleK(60, g.N())
		// Baselines do not depend on L: select once.
		deg, err := core.Degree(g, k)
		if err != nil {
			return nil, err
		}
		dom, err := core.Dominate(g, k)
		if err != nil {
			return nil, err
		}
		aht := map[string][]float64{}
		ehn := map[string][]float64{}
		for _, lf := range lGrid {
			L := int(lf)
			ix, err := index.BuildWorkers(g, L, R, cfg.Seed, cfg.workers())
			if err != nil {
				return nil, err
			}
			ap1, err := core.ApproxWithIndexWorkers(ix, index.Problem1, k, true, cfg.workers())
			if err != nil {
				return nil, err
			}
			ap2, err := core.ApproxWithIndexWorkers(ix, index.Problem2, k, true, cfg.workers())
			if err != nil {
				return nil, err
			}
			for _, sel := range []struct {
				name  string
				nodes []int
			}{
				{"Degree", deg.Nodes}, {"Dominate", dom.Nodes},
				{"ApproxF1", ap1.Nodes}, {"ApproxF2", ap2.Nodes},
			} {
				m, err := metrics.Exact(g, sel.nodes, L)
				if err != nil {
					return nil, err
				}
				aht[sel.name] = append(aht[sel.name], m.AHT)
				ehn[sel.name] = append(ehn[sel.name], m.EHN)
			}
		}
		pa := Panel{Title: fmt.Sprintf("AHT vs L (%s, n=%d)", name, g.N()), XLabel: "L", X: lGrid}
		pe := Panel{Title: fmt.Sprintf("EHN vs L (%s, n=%d)", name, g.N()), XLabel: "L", X: lGrid}
		for _, algo := range order {
			pa.Series = append(pa.Series, Series{Name: algo, Y: aht[algo]})
			pe.Series = append(pe.Series, Series{Name: algo, Y: ehn[algo]})
		}
		rep.Panels = append(rep.Panels, pa, pe)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
