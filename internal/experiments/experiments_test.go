package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// tinyConfig keeps the whole suite runnable in seconds for tests.
func tinyConfig() Config {
	return Config{Scale: 0.02, ScaleG: 0.002, Seed: 1}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Scale: 0, ScaleG: 0.5},
		{Scale: 1.5, ScaleG: 0.5},
		{Scale: 0.5, ScaleG: 0},
		{Scale: 0.5, ScaleG: 2},
	}
	for _, cfg := range bad {
		if _, err := Table2(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestDefaultAndFullConfigsValid(t *testing.T) {
	if err := DefaultConfig().validate(); err != nil {
		t.Fatal(err)
	}
	if err := FullConfig().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry has %d runners, want 15 (Table 2 + Figs 2–10 + ablations + extras + serving + gainserving)", len(all))
	}
	for _, r := range all {
		got, err := ByID(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Title != r.Title {
			t.Fatalf("ByID(%s) mismatched", r.ID)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestTable2(t *testing.T) {
	rep, err := Table2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("Table2 shape wrong: %+v", rep.Tables)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"CAGrQc", "CAHepPh", "Brightkite", "Epinions"} {
		if !strings.Contains(out, name) {
			t.Errorf("rendered Table 2 missing %s", name)
		}
	}
}

func TestFig2ShapeAndConvergence(t *testing.T) {
	rep, err := Fig2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 4 {
		t.Fatalf("Fig2 has %d panels, want 4", len(rep.Panels))
	}
	for _, p := range rep.Panels {
		if len(p.X) != len(rGrid) {
			t.Fatalf("panel %q X grid %v", p.Title, p.X)
		}
		if len(p.Series) != 2 {
			t.Fatalf("panel %q has %d series, want 2", p.Title, len(p.Series))
		}
		dp := p.Series[0]
		for i := 1; i < len(dp.Y); i++ {
			if dp.Y[i] != dp.Y[0] {
				t.Fatalf("DP series not flat in %q: %v", p.Title, dp.Y)
			}
		}
	}
}

func TestFig4HasTimingTables(t *testing.T) {
	rep, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("Fig4 tables = %d, want 2 (L=5, L=10)", len(rep.Tables))
	}
	for _, tab := range rep.Tables {
		if len(tab.Rows) != 4 {
			t.Fatalf("Fig4 table rows = %d, want 4 algorithms", len(tab.Rows))
		}
	}
}

func TestFig5Panels(t *testing.T) {
	rep, err := Fig5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 2 {
		t.Fatalf("Fig5 panels = %d, want 2", len(rep.Panels))
	}
	for _, p := range rep.Panels {
		for _, s := range p.Series {
			if len(s.Y) != len(rGrid) {
				t.Fatalf("series %s has %d points", s.Name, len(s.Y))
			}
			for _, v := range s.Y {
				if v < 0 {
					t.Fatalf("negative time in %s", s.Name)
				}
			}
		}
	}
}

func TestFig6GreedyWins(t *testing.T) {
	rep, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 4 {
		t.Fatalf("Fig6 panels = %d, want 4 datasets", len(rep.Panels))
	}
	// At the largest k, ApproxF1's AHT must not exceed either baseline's.
	// Tolerance: at tiny test scale the metric saturates and sampling noise
	// in the selection can move it by a hundredth of a hop.
	const tol = 0.02
	for _, p := range rep.Panels {
		vals := map[string]float64{}
		for _, s := range p.Series {
			vals[s.Name] = s.Y[len(s.Y)-1]
		}
		if vals["ApproxF1"] > vals["Degree"]+tol || vals["ApproxF1"] > vals["Dominate"]+tol {
			t.Errorf("%s: ApproxF1 AHT %v beaten by a baseline (Degree %v, Dominate %v)",
				p.Title, vals["ApproxF1"], vals["Degree"], vals["Dominate"])
		}
	}
}

func TestFig7GreedyWins(t *testing.T) {
	rep, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Panels {
		vals := map[string]float64{}
		n := 0.0
		for _, s := range p.Series {
			vals[s.Name] = s.Y[len(s.Y)-1]
			if v := s.Y[len(s.Y)-1]; v > n {
				n = v
			}
		}
		// Tolerance of 0.5% of the best coverage: at tiny scale EHN
		// saturates near n and selection noise moves it by a fraction of a
		// node.
		tol := 0.005 * n
		if vals["ApproxF2"] < vals["Degree"]-tol || vals["ApproxF2"] < vals["Dominate"]-tol {
			t.Errorf("%s: ApproxF2 EHN %v beaten by a baseline (Degree %v, Dominate %v)",
				p.Title, vals["ApproxF2"], vals["Degree"], vals["Dominate"])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := Fig8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 2 {
		t.Fatalf("Fig8 panels = %d, want 2", len(rep.Panels))
	}
	if len(rep.Panels[0].Series) != 4 || len(rep.Panels[1].Series) != 4 {
		t.Fatal("Fig8 should time 4 algorithms")
	}
}

func TestFig9Linearity(t *testing.T) {
	rep, err := Fig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 2 {
		t.Fatalf("Fig9 panels = %d, want 2", len(rep.Panels))
	}
	p := rep.Panels[0]
	if len(p.X) != 10 {
		t.Fatalf("Fig9 should cover G1..G10, got %d points", len(p.X))
	}
	// Loose linearity check: time at G10 should be no more than ~30× time
	// at G1 (10× work with generous constant-noise allowance at tiny scale).
	for _, s := range p.Series {
		if s.Y[9] > 30*s.Y[0]+0.05 {
			t.Errorf("series %s looks superlinear: first=%v last=%v", s.Name, s.Y[0], s.Y[9])
		}
	}
}

func TestFig10EffectOfL(t *testing.T) {
	rep, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Panels) != 4 {
		t.Fatalf("Fig10 panels = %d, want 4", len(rep.Panels))
	}
	// EHN panels: every algorithm's coverage must be (near-)nondecreasing in
	// L. For the approximate algorithms the selection itself changes with L,
	// so in the saturated tiny-scale regime tiny dips from selection noise
	// are possible; allow 0.2% of the plateau.
	for _, p := range rep.Panels {
		if !strings.HasPrefix(p.Title, "EHN") {
			continue
		}
		for _, s := range p.Series {
			plateau := s.Y[len(s.Y)-1]
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1]-0.002*plateau {
					t.Errorf("%s/%s: EHN decreased with L: %v", p.Title, s.Name, s.Y)
				}
			}
		}
	}
}

func TestAblationsReport(t *testing.T) {
	rep, err := Ablations(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("ablations tables = %d, want 3", len(rep.Tables))
	}
	// Table (1): lazy must use strictly fewer evaluations than plain while
	// achieving the same exact F1.
	t1 := rep.Tables[0]
	if t1.Rows[0][3] != t1.Rows[1][3] {
		t.Fatalf("lazy F1 %s differs from plain %s", t1.Rows[1][3], t1.Rows[0][3])
	}
	var plainEvals, lazyEvals int
	fmt.Sscan(t1.Rows[0][1], &plainEvals)
	fmt.Sscan(t1.Rows[1][1], &lazyEvals)
	if lazyEvals >= plainEvals {
		t.Fatalf("lazy evals %d not fewer than plain %d", lazyEvals, plainEvals)
	}
}

func TestExtra1GuaranteeHolds(t *testing.T) {
	rep, err := Extra1OptimalityRatio(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Tables[0].Rows {
		for _, col := range []int{2, 3} {
			var ratio float64
			fmt.Sscan(row[col], &ratio)
			if ratio < 1-1/math.E-1e-9 {
				t.Fatalf("greedy ratio %v below 1-1/e on %s k=%s", ratio, row[0], row[1])
			}
			if ratio > 1+1e-9 {
				t.Fatalf("ratio %v above 1: optimum search broken", ratio)
			}
		}
	}
}

func TestExtra2BoundsHold(t *testing.T) {
	rep, err := Extra2EstimatorAccuracy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Fatalf("estimator error exceeded its Hoeffding bound: %v", rep.Notes)
		}
	}
	for _, row := range rep.Tables[0].Rows {
		var err1, bound1, err2, bound2 float64
		fmt.Sscan(row[1], &err1)
		fmt.Sscan(row[2], &bound1)
		fmt.Sscan(row[3], &err2)
		fmt.Sscan(row[4], &bound2)
		if err1 > bound1 || err2 > bound2 {
			t.Fatalf("row %v violates bound", row)
		}
	}
}

func TestRenderOutputsAllSeries(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "demo", Params: "p=1",
		Panels: []Panel{{
			Title: "panel", XLabel: "k", X: []float64{1, 2},
			Series: []Series{{Name: "A", Y: []float64{0.5, 1}}, {Name: "B", Y: []float64{2}}},
		}},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "panel", "A", "B", "a note", "0.5", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}
