package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/hitting"
	"repro/internal/rng"
	"repro/internal/walk"
)

// Extra2EstimatorAccuracy empirically validates Lemmas 3.3 and 3.4: the
// observed deviation of the Algorithm-2 estimates F̂1, F̂2 from the exact DP
// values must stay inside the Hoeffding envelopes
//
//	|F̂1 − F1| ≤ ε(n−|S|)L  and  |F̂2 − F2| ≤ εn,  ε = sqrt(ln(n/δ)/(2R)),
//
// with probability 1−δ. The experiment runs many independent estimates per
// sample size and reports the worst observed error next to the bound. Not a
// paper figure; it substantiates the sample-size analysis the approximate
// algorithm's guarantee rests on.
func Extra2EstimatorAccuracy(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := fig25Graph(cfg)
	if err != nil {
		return nil, err
	}
	const (
		L      = 6
		delta  = 0.05
		trials = 30
	)
	// A fixed mid-quality target set: every 37th node.
	var S []int
	for u := 0; u < g.N() && len(S) < 10; u += 37 {
		S = append(S, u)
	}
	ev, err := hitting.NewEvaluator(g, L)
	if err != nil {
		return nil, err
	}
	exact1, err := ev.F1(S)
	if err != nil {
		return nil, err
	}
	exact2, err := ev.F2(S)
	if err != nil {
		return nil, err
	}

	t := Table{
		Title: fmt.Sprintf("Worst-of-%d observed estimator error vs Hoeffding bound (δ=%.2f)", trials, delta),
		Columns: []string{
			"R", "max |F̂1−F1|", "bound ε(n−|S|)L", "max |F̂2−F2|", "bound εn",
		},
	}
	n := float64(g.N())
	seedGen := rng.New(cfg.Seed)
	allInside := true
	for _, R := range []int{10, 25, 50, 100, 200} {
		eps := math.Sqrt(math.Log(n/delta) / (2 * float64(R)))
		bound1 := eps * (n - float64(len(S))) * L
		bound2 := eps * n
		worst1, worst2 := 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			est, err := walk.NewEstimator(g, L, seedGen.Uint64())
			if err != nil {
				return nil, err
			}
			f1, f2, err := est.EstimateF(S, R)
			if err != nil {
				return nil, err
			}
			if d := math.Abs(f1 - exact1); d > worst1 {
				worst1 = d
			}
			if d := math.Abs(f2 - exact2); d > worst2 {
				worst2 = d
			}
		}
		if worst1 > bound1 || worst2 > bound2 {
			allInside = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(R),
			fmt.Sprintf("%.2f", worst1), fmt.Sprintf("%.2f", bound1),
			fmt.Sprintf("%.2f", worst2), fmt.Sprintf("%.2f", bound2),
		})
	}
	notes := []string{"Hoeffding is conservative: observed errors sit far inside the envelope"}
	if !allInside {
		notes = append(notes, "WARNING: an observed error exceeded its bound — investigate")
	}
	return &Report{
		ID: "extra2", Title: "Estimator accuracy vs Hoeffding sample-size bounds (Lemmas 3.3/3.4)",
		Params:  fmt.Sprintf("n=%d m=%d L=%d |S|=%d", g.N(), g.M(), L, len(S)),
		Tables:  []Table{t},
		Notes:   notes,
		Elapsed: time.Since(start),
	}, nil
}
