package rwdom

import (
	"context"
	"math"
	"strings"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := GeneratePowerLaw(300, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment quick start must work end to end.
	g, err := GeneratePowerLaw(1000, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Solve(g, Problem2, Options{K: 10, L: 6, R: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 10 {
		t.Fatalf("selected %d nodes, want 10", len(sel.Nodes))
	}
	m, err := EvaluateExact(g, sel.Nodes, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.EHN <= 0 || m.AHT <= 0 || m.AHT > 6 {
		t.Fatalf("implausible metrics %+v", m)
	}
}

func TestAutoAlgorithmResolution(t *testing.T) {
	// Small graph: Auto = DP; Approx selected explicitly must agree in
	// quality on a star (hub first).
	g, err := GenerateBarabasiAlbert(100, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Solve(g, Problem1, Options{K: 3, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Algorithm != "DPF1" {
		t.Fatalf("Auto on small graph resolved to %s, want DPF1", auto.Algorithm)
	}
	big, err := GeneratePowerLaw(3000, 9000, 2)
	if err != nil {
		t.Fatal(err)
	}
	autoBig, err := Solve(big, Problem1, Options{K: 3, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if autoBig.Algorithm != "ApproxF1" {
		t.Fatalf("Auto on large graph resolved to %s, want ApproxF1", autoBig.Algorithm)
	}
}

func TestAllAlgorithmsRun(t *testing.T) {
	g := testGraph(t)
	for _, alg := range []Algorithm{AlgorithmDP, AlgorithmSampling, AlgorithmApprox, AlgorithmDegree, AlgorithmDominate, AlgorithmCore} {
		opts := Options{K: 4, L: 4, R: 30, Algorithm: alg}
		for name, p := range map[string]Problem{
			"F1": Problem1,
			"F2": Problem2,
		} {
			sel, err := Solve(g, p, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			if len(sel.Nodes) != 4 {
				t.Fatalf("%s/%v selected %d nodes", name, alg, len(sel.Nodes))
			}
		}
	}
}

func TestDefaultRApplied(t *testing.T) {
	g := testGraph(t)
	sel, err := Solve(g, Problem2, Options{K: 2, L: 3, Algorithm: AlgorithmApprox})
	if err != nil {
		t.Fatalf("R defaulting failed: %v", err)
	}
	if len(sel.Nodes) != 2 {
		t.Fatal("selection failed with defaulted R")
	}
}

func TestHittingTimesAndProbabilities(t *testing.T) {
	g, err := FromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := HittingTimes(g, []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[1]-1.5) > 1e-12 || h[2] != 0 {
		t.Fatalf("hitting times %v", h)
	}
	p, err := HitProbabilities(g, []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.5) > 1e-12 {
		t.Fatalf("hit probabilities %v", p)
	}
}

func TestEvaluateSampledAgreesWithExact(t *testing.T) {
	g := testGraph(t)
	S := []int{0, 5, 9}
	exact, err := EvaluateExact(g, S, 5)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := EvaluateSampled(g, S, 5, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.AHT-sampled.AHT) > 0.1 {
		t.Fatalf("AHT exact %v sampled %v", exact.AHT, sampled.AHT)
	}
	if math.Abs(exact.EHN-sampled.EHN) > 0.03*float64(g.N()) {
		t.Fatalf("EHN exact %v sampled %v", exact.EHN, sampled.EHN)
	}
}

func TestSelectCombined(t *testing.T) {
	g := testGraph(t)
	sel, err := SelectCombined(g, Options{K: 3, L: 4, R: 50}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 3 {
		t.Fatalf("combined selected %v", sel.Nodes)
	}
}

func TestMinimumCoverSet(t *testing.T) {
	g := testGraph(t)
	res, err := MinimumCoverSet(g, Options{L: 5, R: 60}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved || len(res.Nodes) == 0 {
		t.Fatalf("cover not achieved: %+v", res)
	}
}

func TestEdgeDominationFacade(t *testing.T) {
	g := testGraph(t)
	v, err := EdgeDomination(g, []int{0}, 4, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("edge domination %v", v)
	}
}

func TestSampleSize(t *testing.T) {
	r := SampleSize(10000, 0.1, 0.01)
	if r < 100 || r > 10000 {
		t.Fatalf("sample size %d implausible for (0.1, 0.01)", r)
	}
}

func TestIndexReuseAcrossProblems(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndex(g, 5, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	en, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	if err := en.AdoptIndex(ix); err != nil {
		t.Fatal(err)
	}
	req := SelectRequest{K: 4, L: 5, R: 60, Seed: 9}
	req.Problem = Problem1
	s1, err := en.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Problem = Problem2
	s2, err := en.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Nodes) != 4 || len(s2.Nodes) != 4 {
		t.Fatal("index reuse selections wrong size")
	}
	if !s1.IndexCached || !s2.IndexCached {
		t.Fatal("adopted index was rebuilt")
	}
}

func TestDatasetFacade(t *testing.T) {
	names := DatasetNames()
	if len(names) != 4 {
		t.Fatalf("datasets %v", names)
	}
	g, err := LoadDataset("CAGrQc", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 262 {
		t.Fatalf("scaled CAGrQc n=%d", g.N())
	}
}

func TestAlgorithmString(t *testing.T) {
	for alg, want := range map[Algorithm]string{
		AlgorithmAuto: "Auto", AlgorithmDP: "DP", AlgorithmSampling: "Sampling",
		AlgorithmApprox: "Approx", AlgorithmDegree: "Degree", AlgorithmDominate: "Dominate",
	} {
		if alg.String() != want {
			t.Errorf("%d.String() = %s, want %s", alg, alg.String(), want)
		}
	}
	if !strings.Contains(Algorithm(42).String(), "42") {
		t.Error("unknown algorithm String")
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := Solve(nil, Problem1, Options{K: 1, L: 2}); err == nil {
		t.Error("nil graph accepted")
	}
	g := testGraph(t)
	if _, err := Solve(g, Problem2, Options{K: 1, L: 2, Algorithm: Algorithm(99)}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := Solve(g, Problem(9), Options{K: 1, L: 2}); err == nil {
		t.Error("bogus problem accepted")
	}
	if _, err := SelectCombined(nil, Options{K: 1, L: 2}, 0.5); err == nil {
		t.Error("nil graph accepted by SelectCombined")
	}
	if _, err := MinimumCoverSet(nil, Options{L: 2}, 0.5); err == nil {
		t.Error("nil graph accepted by MinimumCoverSet")
	}
}
