package rwdom

import (
	"context"
	"reflect"
	"testing"
)

// TestSelectionsDeterministicAcrossWorkers pins the central guarantee of the
// parallel selection engine: for both problems, Selected and Gains are
// bit-for-bit identical for every worker count. Walks are seeded per
// (node, replicate) so the materialized index is the same set of samples for
// any sharding, and gains accumulate in integers before one final division,
// so no floating-point reassociation can creep in.
func TestSelectionsDeterministicAcrossWorkers(t *testing.T) {
	g, err := GeneratePowerLaw(3000, 12000, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, lazy := range []bool{true, false} {
		for _, run := range []struct {
			name    string
			problem Problem
		}{
			{"F1", Problem1},
			{"F2", Problem2},
		} {
			base := Options{K: 15, L: 5, R: 30, Seed: 9, Algorithm: AlgorithmApprox, Lazy: lazy, Workers: 1}
			want, err := Solve(g, run.problem, base)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Nodes) != 15 {
				t.Fatalf("%s: short selection %d", run.name, len(want.Nodes))
			}
			for _, workers := range []int{2, 8} {
				opts := base
				opts.Workers = workers
				got, err := Solve(g, run.problem, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Nodes, want.Nodes) {
					t.Errorf("%s lazy=%v workers=%d: Nodes %v != workers=1 %v",
						run.name, lazy, workers, got.Nodes, want.Nodes)
				}
				if !reflect.DeepEqual(got.Gains, want.Gains) {
					t.Errorf("%s lazy=%v workers=%d: Gains differ from workers=1",
						run.name, lazy, workers)
				}
			}
		}
	}
}

// TestAdoptedIndexWorkersDeterministic covers the shared-index entry
// point: one materialization adopted by an Engine, selections across worker
// counts must agree, including the default (Workers = 0 = all cores).
func TestAdoptedIndexWorkersDeterministic(t *testing.T) {
	g, err := GeneratePowerLaw(2000, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(g, 6, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	en, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	if err := en.AdoptIndex(ix); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Problem{Problem1, Problem2} {
		req := SelectRequest{Problem: p, K: 12, L: 6, R: 25, Seed: 3, Workers: 1}
		want, err := en.Select(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 8} {
			req.Workers = workers
			got, err := en.Select(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Gains, want.Gains) {
				t.Errorf("%v workers=%d: selection differs from workers=1", p, workers)
			}
		}
	}
}
