package client

import (
	"math/rand/v2"
	"testing"
	"time"
)

// In-package tests for the unexported retry schedule. The round-trip suite
// against the real daemon lives in client_test.go (package client_test) so
// that importing internal/server — which reaches back into this package via
// the shard coordinator — does not form an import cycle.

func TestRetryDelay(t *testing.T) {
	// A Retry-After hint overrides the local backoff entirely — including a
	// zero hint, which means retry now.
	if d := retryDelay(10*time.Second, &Error{HasRetryAfter: true, RetryAfter: 0}, 0.7); d != 0 {
		t.Fatalf("zero hint: delay %v, want 0", d)
	}
	if d := retryDelay(time.Millisecond, &Error{HasRetryAfter: true, RetryAfter: 5 * time.Second}, 0.2); d != 5*time.Second {
		t.Fatalf("5s hint: delay %v, want 5s", d)
	}
	// Without a hint the delay is jittered into [backoff/2, backoff).
	backoff := 200 * time.Millisecond
	for _, u := range []float64{0, 0.25, 0.5, 0.999} {
		d := retryDelay(backoff, &Error{}, u)
		if d < backoff/2 || d >= backoff {
			t.Fatalf("u=%v: delay %v outside [%v, %v)", u, d, backoff/2, backoff)
		}
	}
	if d := retryDelay(0, &Error{}, 0.5); d != 0 {
		t.Fatalf("zero backoff: delay %v, want 0", d)
	}
}

// Two clients shed at the same instant must not retry in lockstep — that is
// the thundering herd the jitter exists to break. Simulate both clients'
// backoff schedules (each drawing its own jitter, as the real loop does) and
// assert they diverge.
func TestRetrySchedulesDoNotSynchronize(t *testing.T) {
	schedule := func() []time.Duration {
		out := make([]time.Duration, 0, 8)
		backoff := 200 * time.Millisecond
		for i := 0; i < 8; i++ {
			out = append(out, retryDelay(backoff, &Error{Code: CodeOverloaded}, rand.Float64()))
			backoff *= 2
		}
		return out
	}
	a, b := schedule(), schedule()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("two clients drew identical jittered schedules: %v", a)
	}
}
