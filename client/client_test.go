package client_test

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/testleak"
)

// The round-trip suite runs the typed client against the real daemon
// handler (httptest.Server over internal/server), locking the SDK to the
// same v1 contract the golden files pin. It is an external test package:
// internal/server imports this package (via the shard coordinator's remote
// connections), so in-package tests could not import the server back.

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.BarabasiAlbert(500, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func harness(t testing.TB, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	testleak.Check(t)
	if cfg.Graphs == nil {
		cfg.Graphs = map[string]*graph.Graph{"test": testGraph(t)}
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestSelectRoundTrip(t *testing.T) {
	g := testGraph(t)
	_, c := harness(t, server.Config{Graphs: map[string]*graph.Graph{"test": g}})
	ctx := context.Background()

	seed := uint64(9)
	res, err := c.Select(ctx, client.SelectRequest{
		Graph: "test", Problem: client.ProblemHitting, K: 6, L: 4, R: 30, Seed: &seed, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(g, 4, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ApproxWithIndexWorkers(ix, index.Problem1, 6, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != len(want.Nodes) {
		t.Fatalf("%d nodes, want %d", len(res.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		if res.Nodes[i] != want.Nodes[i] {
			t.Fatalf("nodes %v, want %v", res.Nodes, want.Nodes)
		}
		if math.Float64bits(res.Gains[i]) != math.Float64bits(want.Gains[i]) {
			t.Fatalf("gain[%d] diverges", i)
		}
	}
	if res.Problem != "F1" || res.Algorithm != "lazy" || res.Seed != 9 || res.R != 30 {
		t.Fatalf("echo fields %+v", res)
	}
}

func TestReadEndpointsRoundTrip(t *testing.T) {
	_, c := harness(t, server.Config{})
	ctx := context.Background()

	gr, err := c.Gain(ctx, client.GainRequest{Graph: "test", L: 4, R: 20, Set: []int{1, 2}, Nodes: []int{0, 5, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Gains) != 3 || gr.Memo != "miss" {
		t.Fatalf("first gain %+v", gr)
	}
	gr2, err := c.Gain(ctx, client.GainRequest{Graph: "test", L: 4, R: 20, Set: []int{2, 1}, Nodes: []int{0, 5, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if gr2.Memo != "hit" {
		t.Fatalf("repeat gain memo %q, want hit", gr2.Memo)
	}
	for i := range gr.Gains {
		if math.Float64bits(gr.Gains[i]) != math.Float64bits(gr2.Gains[i]) {
			t.Fatal("memoized gains diverge")
		}
	}

	or, err := c.Objective(ctx, client.ObjectiveRequest{Graph: "test", L: 4, R: 20, Set: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if or.Objective <= 0 {
		t.Fatalf("objective %v", or.Objective)
	}

	tg, err := c.TopGains(ctx, client.TopGainsRequest{Graph: "test", L: 4, R: 20, Set: []int{1}, B: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Nodes) != 5 || tg.B != 5 {
		t.Fatalf("topgains %+v", tg)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Graphs != 1 {
		t.Fatalf("health %+v err %v", h, err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Memo.Enabled || st.Memo.Hits < 1 || st.Cache.Resident != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// The streaming iterator must reassemble bit-identically into the blocking
// reply — the SDK half of the streaming parity criterion.
func TestSelectStreamRoundTrip(t *testing.T) {
	_, c := harness(t, server.Config{})
	ctx := context.Background()
	req := client.SelectRequest{Graph: "test", K: 6, L: 4, R: 25, Algorithm: client.AlgorithmPlain, Workers: 2}

	blocking, err := c.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SelectStream(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var rounds []client.Round
	for st.Next() {
		rounds = append(rounds, st.Round())
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != len(blocking.Nodes) {
		t.Fatalf("%d rounds for %d picks", len(rounds), len(blocking.Nodes))
	}
	for i, rd := range rounds {
		if rd.Round != i+1 || rd.Node != blocking.Nodes[i] {
			t.Fatalf("round %d: %+v, want node %d", i+1, rd, blocking.Nodes[i])
		}
		if math.Float64bits(rd.Gain) != math.Float64bits(blocking.Gains[i]) {
			t.Fatalf("round %d gain diverges", i+1)
		}
	}
	for i := range blocking.Nodes {
		if res.Nodes[i] != blocking.Nodes[i] {
			t.Fatalf("stream result nodes %v, want %v", res.Nodes, blocking.Nodes)
		}
	}
	if math.Float64bits(res.Objective) != math.Float64bits(blocking.Objective) {
		t.Fatalf("stream objective %v, want %v", res.Objective, blocking.Objective)
	}
}

func TestTypedErrors(t *testing.T) {
	_, c := harness(t, server.Config{})
	ctx := context.Background()

	_, err := c.Select(ctx, client.SelectRequest{Graph: "nope", K: 3, L: 4})
	if client.CodeOf(err) != client.CodeNotFound {
		t.Fatalf("unknown graph: %v (code %q)", err, client.CodeOf(err))
	}
	var ce *client.Error
	if !asError(err, &ce) || ce.HTTPStatus != http.StatusNotFound {
		t.Fatalf("unknown graph error %#v", err)
	}

	if _, err := c.Select(ctx, client.SelectRequest{Graph: "test", K: 0, L: 4}); client.CodeOf(err) != client.CodeBadRequest {
		t.Fatalf("k=0: code %q", client.CodeOf(err))
	}
	if _, err := c.Gain(ctx, client.GainRequest{Graph: "test", L: 4, Nodes: []int{999999}}); client.CodeOf(err) != client.CodeBadRequest {
		t.Fatalf("out-of-range node: code %q", client.CodeOf(err))
	}

	// Draining (emulated at the wire — the real drain window is exercised
	// in internal/server's lifecycle tests): with retries disabled the
	// typed, Temporary error surfaces immediately.
	drain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"draining","message":"server is draining"}}`))
	}))
	t.Cleanup(drain.Close)
	noRetry, err := client.New(drain.URL, client.WithRetry(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var de *client.Error
	if _, err := noRetry.Select(ctx, client.SelectRequest{Graph: "test", K: 3, L: 4}); client.CodeOf(err) != client.CodeDraining || !asError(err, &de) || !de.Temporary() {
		t.Fatalf("draining: %#v (code %q)", err, client.CodeOf(err))
	}
}

// A daemon mid-rolling-restart answers 503/draining for a moment; the
// client must ride it out and succeed against the recovered backend.
func TestRetryOnDrain(t *testing.T) {
	g := testGraph(t)
	s, err := server.New(server.Config{Graphs: map[string]*graph.Graph{"test": g}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"draining","message":"server is draining"}}`))
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	c, err := client.New(flaky.URL, client.WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Select(context.Background(), client.SelectRequest{Graph: "test", K: 3, L: 4, R: 20})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("%d nodes", len(res.Nodes))
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (2 drains + 1 success)", got)
	}

	// Retries exhausted: the typed drain error surfaces.
	calls.Store(-100)
	if _, err := c.Select(context.Background(), client.SelectRequest{Graph: "test", K: 3, L: 4, R: 20}); client.CodeOf(err) != client.CodeDraining {
		t.Fatalf("exhausted retries: code %q (%v)", client.CodeOf(err), err)
	}
}

// An overload shed carries Retry-After; the client must honor the hint over
// its own backoff. Here the base backoff is deliberately enormous (10s) and
// the daemon says "Retry-After: 0" — the call must recover immediately, not
// after the local schedule.
func TestRetryOnOverloadHonorsRetryAfterZero(t *testing.T) {
	testleak.Check(t)
	g := testGraph(t)
	s, err := server.New(server.Config{Graphs: map[string]*graph.Graph{"test": g}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"admission queue full"}}`))
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	c, err := client.New(flaky.URL, client.WithRetry(3, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	res, err := c.Select(ctx, client.SelectRequest{Graph: "test", K: 3, L: 4, R: 20})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(res.Nodes) != 3 || calls.Load() != 3 {
		t.Fatalf("nodes=%d calls=%d, want 3/3", len(res.Nodes), calls.Load())
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("recovery took %v — Retry-After: 0 was not honored over the 10s backoff", elapsed)
	}

	// Retries exhausted: the typed overloaded error surfaces, Temporary and
	// carrying the parsed hint.
	calls.Store(-100)
	var oe *client.Error
	_, err = c.Select(ctx, client.SelectRequest{Graph: "test", K: 3, L: 4, R: 20})
	if client.CodeOf(err) != client.CodeOverloaded || !asError(err, &oe) || !oe.Temporary() || !oe.HasRetryAfter || oe.RetryAfter != 0 {
		t.Fatalf("exhausted retries: %#v (code %q)", err, client.CodeOf(err))
	}
}

// Two real clients hammering an always-overloaded daemon concurrently
// exercise the jittered retry path under the race detector; the schedule
// divergence itself is asserted in-package (retry_test.go).
func TestConcurrentRetryingClientsDoNotSynchronize(t *testing.T) {
	testleak.Check(t)
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"admission queue full"}}`))
	}))
	t.Cleanup(shed.Close)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.New(shed.URL, client.WithRetry(4, time.Millisecond))
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = c.Objective(context.Background(), client.ObjectiveRequest{Graph: "test", L: 4, Set: []int{1}})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if client.CodeOf(err) != client.CodeOverloaded {
			t.Fatalf("client %d: code %q (%v), want overloaded", i, client.CodeOf(err), err)
		}
	}
}

// asError is errors.As specialized to *client.Error without importing errors.
func asError(err error, target **client.Error) bool {
	ce, ok := err.(*client.Error)
	if ok {
		*target = ce
	}
	return ok
}

func TestApplyDeltaRoundTrip(t *testing.T) {
	g := testGraph(t)
	_, c := harness(t, server.Config{Graphs: map[string]*graph.Graph{"test": g}})
	ctx := context.Background()

	// Mutate through the SDK: remove one real edge, add one node wired in.
	u := 0
	for g.Degree(u) == 0 {
		u++
	}
	v := int(g.Neighbors(u)[0])
	base := uint64(0)
	res, err := c.ApplyDelta(ctx, client.ApplyDeltaRequest{
		Graph:     "test",
		AddNodes:  1,
		Add:       []client.Edge{{U: g.N(), V: u}},
		Remove:    []client.Edge{{U: u, V: v}},
		BaseEpoch: &base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != "test" || res.Epoch != 1 || res.Nodes != g.N()+1 || res.Touched == 0 {
		t.Fatalf("mutation reply %+v", res)
	}

	// The mutation is visible to reads: the appended node is a valid
	// candidate now, and its gain reflects the new edge.
	gr, err := c.Gain(ctx, client.GainRequest{Graph: "test", L: 4, R: 20, Nodes: []int{g.N()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Gains) != 1 || gr.Gains[0] <= 0 {
		t.Fatalf("post-mutation gain of the appended node: %+v", gr)
	}

	// Typed conflict on a stale base epoch, carried through the envelope.
	_, err = c.ApplyDelta(ctx, client.ApplyDeltaRequest{
		Graph: "test", Add: []client.Edge{{U: 1, V: 2}}, BaseEpoch: &base,
	})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != client.CodeConflict || ce.HTTPStatus != http.StatusConflict {
		t.Fatalf("stale base epoch: %v, want typed %s/409", err, client.CodeConflict)
	}

	// Epoch-pinned partial reads: the current pin answers, a stale pin is a
	// typed stale_epoch — the coordinator's mixed-epoch-merge guard on the
	// wire.
	pin := uint64(1)
	if _, err := c.PartialGain(ctx, client.PartialGainRequest{
		Graph: "test", L: 4, R0: 0, R1: 20, Nodes: []int{1}, Epoch: &pin,
	}); err != nil {
		t.Fatalf("current-epoch pin: %v", err)
	}
	stale := uint64(0)
	_, err = c.PartialGain(ctx, client.PartialGainRequest{
		Graph: "test", L: 4, R0: 0, R1: 20, Nodes: []int{1}, Epoch: &stale,
	})
	if !errors.As(err, &ce) || ce.Code != client.CodeStaleEpoch {
		t.Fatalf("stale-epoch pin: %v, want typed %s", err, client.CodeStaleEpoch)
	}
}
