package client_test

import (
	"context"
	"net/http"
	"testing"

	"repro/client"
	"repro/internal/graph"
	"repro/internal/server"
)

// TestAccuracyRoundTrip pins the SDK half of the adaptive-budget contract:
// an epsilon-targeted Select carries the accuracy evidence block, streamed
// rounds carry their per-round CI fields, and Stats surfaces the daemon's
// adaptive counters.
func TestAccuracyRoundTrip(t *testing.T) {
	g, err := graph.BarabasiAlbert(400, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, c := harness(t, server.Config{
		Graphs:        map[string]*graph.Graph{"easy": g},
		AccuracyChunk: 25,
	})
	ctx := context.Background()
	req := client.SelectRequest{Graph: "easy", K: 3, L: 6, R: 200, Epsilon: 25, Delta: 0.05}

	res, err := c.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Accuracy
	if acc == nil {
		t.Fatal("epsilon-targeted Select has no Accuracy block")
	}
	if acc.Epsilon != 25 || acc.Delta != 0.05 {
		t.Fatalf("accuracy echoes epsilon=%v delta=%v", acc.Epsilon, acc.Delta)
	}
	if !acc.EarlyStopped || acc.ReplicatesUsed >= 200 || acc.CIWidth > acc.Epsilon {
		t.Fatalf("easy graph should early-stop under budget: %+v", acc)
	}

	st, err := c.SelectStream(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var rounds []client.Round
	for st.Next() {
		rounds = append(rounds, st.Round())
	}
	sres, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if sres.Accuracy == nil || *sres.Accuracy != *acc {
		t.Fatalf("stream accuracy %+v, blocking %+v", sres.Accuracy, acc)
	}
	if len(rounds) != len(res.Nodes) {
		t.Fatalf("%d rounds for %d picks", len(rounds), len(res.Nodes))
	}
	for i, rd := range rounds {
		if rd.Replicates < 1 || rd.Replicates > acc.ReplicatesUsed || rd.CIWidth > acc.Epsilon {
			t.Fatalf("round %d CI evidence inconsistent: %+v", i, rd)
		}
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accuracy == nil {
		t.Fatal("Stats has no Accuracy block after adaptive traffic")
	}
	if stats.Accuracy.AdaptiveSelects < 2 || stats.Accuracy.EarlyStops < 2 {
		t.Fatalf("adaptive counters not recorded: %+v", stats.Accuracy)
	}
	if len(stats.Accuracy.CIWidthHist) != 5 {
		t.Fatalf("ci_width_hist has %d buckets, want 5", len(stats.Accuracy.CIWidthHist))
	}
}

// TestAccuracyUnsupportedSharded pins the typed error for the sharding
// boundary: epsilon against a sharded daemon is CodeUnsupported / HTTP 501.
func TestAccuracyUnsupportedSharded(t *testing.T) {
	_, c := harness(t, server.Config{Shards: 2})

	_, err := c.Select(context.Background(), client.SelectRequest{
		Graph: "test", K: 2, L: 4, R: 20, Epsilon: 0.5,
	})
	if client.CodeOf(err) != client.CodeUnsupported {
		t.Fatalf("sharded accuracy select: %v (code %q), want %q", err, client.CodeOf(err), client.CodeUnsupported)
	}
	var ce *client.Error
	if !asError(err, &ce) || ce.HTTPStatus != http.StatusNotImplemented {
		t.Fatalf("HTTP status %v, want 501", err)
	}
}
