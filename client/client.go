// Package client is the typed Go SDK for the rwdomd random-walk-domination
// daemon: request/response structs mirroring the v1 wire contract, typed
// errors carrying the daemon's stable machine-readable codes, automatic
// retry when the daemon is draining, and a streaming iterator for selects.
//
//	c, err := client.New("http://localhost:7474")
//	if err != nil { ... }
//	res, err := c.Select(ctx, client.SelectRequest{Graph: "web", K: 50, L: 6})
//	if err != nil { ... }
//	fmt.Println(res.Nodes)
//
// Streaming a selection round by round:
//
//	st, err := c.SelectStream(ctx, client.SelectRequest{Graph: "web", K: 50, L: 6})
//	if err != nil { ... }
//	defer st.Close()
//	for st.Next() {
//		rd := st.Round()
//		fmt.Printf("round %d: node %d (objective %.1f)\n", rd.Round, rd.Node, rd.Objective)
//	}
//	res, err := st.Result() // the blocking-shape reply, bit-identical nodes/gains
//
// Errors returned by every method are (*Error) when the daemon produced a
// structured failure; Code carries the stable code (CodeBadRequest,
// CodeNotFound, CodeDraining, CodeOverloaded, CodeTimeout, CodeConflict,
// CodeStaleEpoch, CodeUnsupported, CodeInternal) from the shared JSON envelope
// {"error":{"code","message"}}. Draining and
// overloaded replies are retried automatically with jittered exponential
// backoff, honoring the daemon's Retry-After hint when one is present.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Stable error codes, shared verbatim with the daemon's error envelope.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeDraining   = "draining"
	CodeOverloaded = "overloaded"
	CodeTimeout    = "timeout"
	// CodeConflict marks a graph mutation the current graph state rejects: a
	// stale base epoch (another writer won the race — re-read and retry with
	// the new epoch) or a structurally conflicting delta. Nothing was applied.
	CodeConflict = "conflict"
	// CodeStaleEpoch marks a read pinned to a graph epoch the daemon has
	// moved past; retrying against the current epoch succeeds.
	CodeStaleEpoch = "stale_epoch"
	// CodeUnsupported marks a well-formed request combining features the
	// daemon's serving mode cannot honor — today, accuracy knobs
	// (epsilon/delta) against a sharded deployment. Retry without the knob
	// or against an unsharded daemon.
	CodeUnsupported = "unsupported"
	CodeInternal    = "internal"
)

// Error is a structured daemon error.
type Error struct {
	// Code is one of the stable Code* constants.
	Code string
	// Message is the human-readable explanation.
	Message string
	// HTTPStatus is the status the daemon answered with.
	HTTPStatus int
	// RetryAfter is the daemon's Retry-After hint; valid only when
	// HasRetryAfter is true (the daemon sends "Retry-After: 0" to mean
	// "retry immediately", which is distinct from no hint at all).
	RetryAfter time.Duration
	// HasRetryAfter reports whether the reply carried a Retry-After header.
	HasRetryAfter bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("rwdomd: %s (%s)", e.Message, e.Code)
}

// Temporary reports whether retrying later may succeed: the daemon was
// draining (a rolling restart's window) or overloaded (its admission gate
// shed the request; capacity frees as in-flight work completes).
func (e *Error) Temporary() bool { return e.Code == CodeDraining || e.Code == CodeOverloaded }

// CodeOf extracts the stable code from any client method error, or
// CodeInternal if it carries none (transport failures etc.).
func CodeOf(err error) string {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Code
	}
	return CodeInternal
}

// envelope is the daemon's JSON error shape.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Client talks to one rwdomd base URL. It is safe for concurrent use.
type Client struct {
	base    *url.URL
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry sets the per-call retry budget — how many times one request is
// retried when the daemon answers with a Temporary error (503 "draining" or
// "overloaded") — and the base backoff between attempts. The backoff doubles
// each retry and is jittered (each sleep is drawn uniformly from
// [backoff/2, backoff]) so that a fleet of clients shed at the same instant
// does not retry in lockstep. A Retry-After hint from the daemon overrides
// the computed backoff for that attempt, including "Retry-After: 0" meaning
// retry immediately. The default is 3 retries starting at 200ms;
// WithRetry(0, 0) disables retrying.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = retries, backoff }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:7474").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs scheme and host", baseURL)
	}
	c := &Client{base: u, hc: http.DefaultClient, retries: 3, backoff: 200 * time.Millisecond}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// do issues the request built by build, retrying Temporary errors (drain
// and overload sheds) with jittered exponential backoff up to the per-call
// retry budget. build is called per attempt so bodies are fresh.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req.WithContext(ctx))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		apiErr := decodeError(resp)
		if !apiErr.Temporary() || attempt >= c.retries {
			return nil, apiErr
		}
		wait := retryDelay(backoff, apiErr, rand.Float64())
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		backoff *= 2
	}
}

// retryDelay computes the sleep before the next attempt. The daemon's
// Retry-After hint, when present, overrides the client-side backoff — a
// hint of zero means "a slot frees the moment in-flight work completes, go
// now". Otherwise the wait is the current backoff jittered into
// [backoff/2, backoff] by u ∈ [0, 1), decorrelating clients that were shed
// together.
func retryDelay(backoff time.Duration, apiErr *Error, u float64) time.Duration {
	if apiErr.HasRetryAfter {
		return apiErr.RetryAfter
	}
	if backoff <= 0 {
		return 0
	}
	return backoff/2 + time.Duration(u*float64(backoff/2))
}

// decodeError turns a non-200 response into a typed *Error, consuming and
// closing the body. A Retry-After header (integer seconds or HTTP-date) is
// parsed into the error's hint fields.
func decodeError(resp *http.Response) *Error {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	e := &Error{HTTPStatus: resp.StatusCode}
	var env envelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		e.Code, e.Message = env.Error.Code, env.Error.Message
	} else {
		e.Code = CodeInternal
		e.Message = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter, e.HasRetryAfter = time.Duration(secs)*time.Second, true
		} else if at, err := http.ParseTime(ra); err == nil {
			e.RetryAfter, e.HasRetryAfter = max(0, time.Until(at)), true
		}
	}
	return e
}

// getJSON issues a GET and decodes a 200 into out.
func (c *Client) getJSON(ctx context.Context, path string, query url.Values, out any) error {
	u := c.base.JoinPath(path)
	if query != nil {
		u.RawQuery = query.Encode()
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, u.String(), nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON issues a POST with a JSON body and decodes a 200 into out.
func (c *Client) postJSON(ctx context.Context, path string, query url.Values, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	u := c.base.JoinPath(path)
	if query != nil {
		u.RawQuery = query.Encode()
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, u.String(), bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// nodeList renders ids as the comma-separated wire form.
func nodeList(nodes []int) string {
	if len(nodes) == 0 {
		return ""
	}
	parts := make([]string, len(nodes))
	for i, u := range nodes {
		parts[i] = strconv.Itoa(u)
	}
	return strings.Join(parts, ",")
}

// readQuery builds the shared query parameters of the GET endpoints.
func readQuery(graph, problem string, L, R int, seed *uint64, set []int) url.Values {
	q := url.Values{}
	q.Set("graph", graph)
	if problem != "" {
		q.Set("problem", problem)
	}
	q.Set("L", strconv.Itoa(L))
	if R > 0 {
		q.Set("R", strconv.Itoa(R))
	}
	if seed != nil {
		q.Set("seed", strconv.FormatUint(*seed, 10))
	}
	if len(set) > 0 {
		q.Set("set", nodeList(set))
	}
	return q
}

// Select runs one blocking top-k selection.
func (c *Client) Select(ctx context.Context, req SelectRequest) (*SelectResponse, error) {
	var out SelectResponse
	if err := c.postJSON(ctx, "/v1/select", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Gain returns the marginal gains of req.Nodes against req.Set.
func (c *Client) Gain(ctx context.Context, req GainRequest) (*GainResponse, error) {
	q := readQuery(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	q.Set("nodes", nodeList(req.Nodes))
	var out GainResponse
	if err := c.getJSON(ctx, "/v1/gain", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Objective returns the estimated objective value of req.Set.
func (c *Client) Objective(ctx context.Context, req ObjectiveRequest) (*ObjectiveResponse, error) {
	q := readQuery(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	var out ObjectiveResponse
	if err := c.getJSON(ctx, "/v1/objective", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopGains returns the best candidates by marginal gain against req.Set.
func (c *Client) TopGains(ctx context.Context, req TopGainsRequest) (*TopGainsResponse, error) {
	q := readQuery(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	if req.B > 0 {
		q.Set("b", strconv.Itoa(req.B))
	}
	if req.Workers > 0 {
		q.Set("workers", strconv.Itoa(req.Workers))
	}
	var out TopGainsResponse
	if err := c.getJSON(ctx, "/v1/topgains", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ApplyDelta mutates a served graph: append nodes, add edges, remove edges,
// all-or-nothing. Set req.BaseEpoch to make the mutation conditional on the
// graph still being at that epoch (optimistic concurrency); a lost race
// answers CodeConflict. Mutations refused while the daemon drains or sheds
// load are retried like any other call — the daemon only refuses them
// before applying anything.
func (c *Client) ApplyDelta(ctx context.Context, req ApplyDeltaRequest) (*ApplyDeltaResponse, error) {
	var out ApplyDeltaResponse
	if err := c.postJSON(ctx, "/v1/graph/"+url.PathEscape(req.Graph)+"/edges", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PartialGain returns the integer gain sums of req.Nodes against req.Set
// over the replicate range [req.R0, req.R1) — the worker half of
// replicate-sharded serving.
func (c *Client) PartialGain(ctx context.Context, req PartialGainRequest) (*PartialGainResponse, error) {
	q := readQuery(req.Graph, req.Problem, req.L, 0, req.Seed, req.Set)
	q.Set("r0", strconv.Itoa(req.R0))
	q.Set("r1", strconv.Itoa(req.R1))
	if req.Epoch != nil {
		q.Set("epoch", strconv.FormatUint(*req.Epoch, 10))
	}
	if len(req.Nodes) > 0 {
		q.Set("nodes", nodeList(req.Nodes))
	}
	if req.WantObjective {
		q.Set("objective", "1")
	}
	var out PartialGainResponse
	if err := c.getJSON(ctx, "/v1/partial/gain", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PartialTopGains returns the best candidates by integer gain sum over the
// replicate range [req.R0, req.R1), req.Set members excluded.
func (c *Client) PartialTopGains(ctx context.Context, req PartialTopGainsRequest) (*PartialTopGainsResponse, error) {
	q := readQuery(req.Graph, req.Problem, req.L, 0, req.Seed, req.Set)
	q.Set("r0", strconv.Itoa(req.R0))
	q.Set("r1", strconv.Itoa(req.R1))
	if req.Epoch != nil {
		q.Set("epoch", strconv.FormatUint(*req.Epoch, 10))
	}
	if req.B > 0 {
		q.Set("b", strconv.Itoa(req.B))
	}
	if req.Workers > 0 {
		q.Set("workers", strconv.Itoa(req.Workers))
	}
	var out PartialTopGainsResponse
	if err := c.getJSON(ctx, "/v1/partial/topgains", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health returns the daemon's liveness state. A draining daemon answers
// 503 with a well-formed body, which is NOT an error here: the reply
// carries Status "draining", and health checks want that state, not a
// failure. Health never retries; only a malformed reply errors.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	u := c.base.JoinPath("/healthz")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out Health
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && out.Status == "" {
		return nil, &Error{Code: CodeInternal, Message: fmt.Sprintf("HTTP %d", resp.StatusCode), HTTPStatus: resp.StatusCode}
	}
	return &out, nil
}

// Stats returns the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.getJSON(ctx, "/stats", url.Values{"buckets": {"0"}}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
