package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// SelectStream iterates the NDJSON round events of POST /v1/select?stream=1.
// The usage pattern mirrors bufio.Scanner:
//
//	for st.Next() {
//		rd := st.Round()
//		...
//	}
//	res, err := st.Result()
//
// The rounds concatenate bit-identically into Result()'s nodes and gains —
// the daemon's streaming path is the blocking path with a tap, not a
// different algorithm.
type SelectStream struct {
	body   io.ReadCloser
	sc     *bufio.Scanner
	cur    Round
	result *SelectResponse
	err    error
	done   bool
}

// streamLine is the union of the three NDJSON line shapes.
type streamLine struct {
	Round      int             `json:"round"`
	Node       *int            `json:"node"`
	Gain       float64         `json:"gain"`
	Objective  float64         `json:"objective"`
	CIWidth    float64         `json:"ci_width"`
	Replicates int             `json:"replicates"`
	Done       bool            `json:"done"`
	Result     *SelectResponse `json:"result"`
	Error      *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// SelectStream starts a streamed selection. Drain responses are retried
// like every other call; the returned stream must be Closed.
func (c *Client) SelectStream(ctx context.Context, req SelectRequest) (*SelectStream, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	u := c.base.JoinPath("/v1/select")
	u.RawQuery = url.Values{"stream": {"1"}}.Encode()
	resp, err := c.do(ctx, func() (*http.Request, error) {
		hr, err := http.NewRequest(http.MethodPost, u.String(), bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		return hr, nil
	})
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &SelectStream{body: resp.Body, sc: sc}, nil
}

// Next advances to the next round event. It returns false when the stream
// has delivered its final line (result or error) or failed; inspect
// Result() afterwards.
func (s *SelectStream) Next() bool {
	if s.done {
		return false
	}
	for s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev streamLine
		if err := json.Unmarshal(line, &ev); err != nil {
			s.err = fmt.Errorf("client: bad stream line %q: %w", line, err)
			s.done = true
			return false
		}
		switch {
		case ev.Error != nil:
			s.err = &Error{Code: ev.Error.Code, Message: ev.Error.Message, HTTPStatus: http.StatusOK}
			s.done = true
			return false
		case ev.Done:
			s.result = ev.Result
			s.done = true
			return false
		case ev.Node != nil:
			s.cur = Round{Round: ev.Round, Node: *ev.Node, Gain: ev.Gain, Objective: ev.Objective, CIWidth: ev.CIWidth, Replicates: ev.Replicates}
			return true
		}
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		s.err = err
	} else if s.err == nil && s.result == nil {
		s.err = io.ErrUnexpectedEOF
	}
	return false
}

// Round returns the event Next most recently advanced to.
func (s *SelectStream) Round() Round { return s.cur }

// Result returns the final blocking-shape reply once Next has returned
// false, or the terminal error (a mid-stream *Error, a transport failure,
// or io.ErrUnexpectedEOF for a truncated stream).
func (s *SelectStream) Result() (*SelectResponse, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.done {
		return nil, fmt.Errorf("client: Result called before the stream finished")
	}
	return s.result, nil
}

// Close releases the underlying response body; safe to call at any time
// and more than once.
func (s *SelectStream) Close() error {
	s.done = true
	return s.body.Close()
}
