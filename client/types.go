package client

// Wire types mirroring the rwdomd v1 HTTP contract (which in turn mirrors
// the engine's request/response types). The client package deliberately
// depends only on the wire format — it compiles against any rwdomd of the
// same v1 contract, and the golden-file suite in internal/server pins that
// contract.

// Problem names accepted by the daemon; numeric forms "1"/"2" also work.
const (
	ProblemHitting  = "hitting"  // Problem 1: minimize total hitting time
	ProblemCoverage = "coverage" // Problem 2: maximize expected coverage
)

// Greedy driver names for SelectRequest.Algorithm.
const (
	AlgorithmLazy  = "lazy"  // CELF lazy greedy (the default)
	AlgorithmPlain = "plain" // per-round full scan
)

// SelectRequest is the POST /v1/select body.
type SelectRequest struct {
	// Graph names one of the graphs the daemon serves.
	Graph string `json:"graph"`
	// Problem is ProblemHitting or ProblemCoverage (default coverage).
	Problem string `json:"problem,omitempty"`
	// K is the selection budget.
	K int `json:"k"`
	// L is the walk-length bound; R the per-node sample size (default 100).
	L int `json:"L"`
	R int `json:"R,omitempty"`
	// Seed fixes the walk sampling (daemon default 1); part of the index
	// identity. Nil means "server default".
	Seed *uint64 `json:"seed,omitempty"`
	// Algorithm is AlgorithmLazy (default) or AlgorithmPlain.
	Algorithm string `json:"algorithm,omitempty"`
	// Workers shards index construction and gain evaluation (0 = server
	// default). Selections are identical for every value.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the request (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Epsilon > 0 enables the adaptive replicate budget: R becomes a cap and
	// each greedy round stops sampling once the leader's separation
	// confidence interval beats Epsilon at confidence Delta (server default
	// 0.05). Zero inherits the daemon default (off unless it runs with
	// -epsilon). Sharded daemons reject accuracy knobs with CodeUnsupported.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
}

// Accuracy is the adaptive-budget evidence block of a select reply, present
// only when the run had an epsilon target. CIWidth is the largest per-round
// separation half-width among the committed rounds (CIWidth <= Epsilon
// certifies every round met the target); ReplicatesUsed the final
// materialized replicate width (<= R); EarlyStopped whether the run finished
// below the R cap.
type Accuracy struct {
	Epsilon        float64 `json:"epsilon"`
	Delta          float64 `json:"delta"`
	CIWidth        float64 `json:"ci_width"`
	ReplicatesUsed int     `json:"replicates_used"`
	ChunksBuilt    int     `json:"chunks_built"`
	EarlyStopped   bool    `json:"early_stopped"`
}

// SelectResponse is the /v1/select reply.
type SelectResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	K           int       `json:"k"`
	L           int       `json:"L"`
	R           int       `json:"R"`
	Seed        uint64    `json:"seed"`
	Algorithm   string    `json:"algorithm"`
	Workers     int       `json:"workers"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	Objective   float64   `json:"objective"`
	Evaluations int       `json:"evaluations"`
	BuildMS     float64   `json:"build_ms"`
	SelectMS    float64   `json:"select_ms"`
	IndexCached bool      `json:"index_cached"`
	Coalesced   bool      `json:"coalesced"`
	// Accuracy carries the adaptive-budget evidence; nil on fixed-R runs.
	Accuracy *Accuracy `json:"accuracy,omitempty"`
}

// Round is one NDJSON round event of POST /v1/select?stream=1: the node
// picked in this greedy round, its marginal gain, and the objective so far.
// CIWidth and Replicates carry the round's accuracy evidence on adaptive
// (epsilon-targeted) runs and are zero otherwise.
type Round struct {
	Round      int     `json:"round"`
	Node       int     `json:"node"`
	Gain       float64 `json:"gain"`
	Objective  float64 `json:"objective"`
	CIWidth    float64 `json:"ci_width,omitempty"`
	Replicates int     `json:"replicates,omitempty"`
}

// GainRequest identifies a GET /v1/gain query.
type GainRequest struct {
	Graph   string
	Problem string
	L, R    int
	Seed    *uint64
	// Set is the committed seed set; Nodes the candidates to evaluate.
	Set   []int
	Nodes []int
}

// GainResponse is the /v1/gain reply: Gains[i] is the marginal gain of
// adding Nodes[i] to Set. Memo reports which memoized path served it
// ("hit", "miss", "extended", "empty", or "off"). Degraded is true when the
// walk index was unavailable (its build was shed under overload or failed)
// and the answer came from an already-memoized gain table — exact values,
// but a frozen snapshot that cannot extend to new sets.
type GainResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	Set         []int     `json:"set"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	IndexCached bool      `json:"index_cached"`
	Memo        string    `json:"memo"`
	Degraded    bool      `json:"degraded,omitempty"`
}

// ObjectiveRequest identifies a GET /v1/objective query.
type ObjectiveRequest struct {
	Graph   string
	Problem string
	L, R    int
	Seed    *uint64
	Set     []int
}

// ObjectiveResponse is the /v1/objective reply. Degraded: see
// GainResponse.Degraded.
type ObjectiveResponse struct {
	Graph       string  `json:"graph"`
	Problem     string  `json:"problem"`
	Set         []int   `json:"set"`
	Objective   float64 `json:"objective"`
	IndexCached bool    `json:"index_cached"`
	Memo        string  `json:"memo"`
	Degraded    bool    `json:"degraded,omitempty"`
}

// TopGainsRequest identifies a GET /v1/topgains query.
type TopGainsRequest struct {
	Graph   string
	Problem string
	L, R    int
	Seed    *uint64
	Set     []int
	// B is the number of winners (0 = server default of 10).
	B int
	// Workers shards the candidate sweep (0 = server default).
	Workers int
}

// TopGainsResponse is the /v1/topgains reply, gain descending with ties
// broken by ascending node id; set members are excluded. Degraded: see
// GainResponse.Degraded.
type TopGainsResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	Set         []int     `json:"set"`
	B           int       `json:"b"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	IndexCached bool      `json:"index_cached"`
	Memo        string    `json:"memo"`
	Degraded    bool      `json:"degraded,omitempty"`
}

// Edge is one undirected weighted edge of a mutation delta. W is optional
// (daemon default 1).
type Edge struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w,omitempty"`
}

// ApplyDeltaRequest is the POST /v1/graph/{name}/edges body: one
// all-or-nothing mutation of a served graph. The daemon bumps the graph's
// mutation epoch on success and repairs its resident walk indexes
// incrementally, so warm caches stay warm across small deltas.
type ApplyDeltaRequest struct {
	// Graph names the graph to mutate; it rides in the URL path, not the
	// body.
	Graph string `json:"-"`
	// AddNodes appends this many fresh isolated nodes (ids n .. n+AddNodes-1)
	// before edges are applied, so added edges may reference them.
	AddNodes int `json:"add_nodes,omitempty"`
	// Add lists edges to insert; adding an existing edge is a conflict.
	Add []Edge `json:"add,omitempty"`
	// Remove lists edges to delete (weights ignored); removing a missing
	// edge is a conflict.
	Remove []Edge `json:"remove,omitempty"`
	// BaseEpoch, when non-nil, makes the mutation conditional: it applies
	// only if the graph is still at that epoch, else CodeConflict.
	BaseEpoch *uint64 `json:"base_epoch,omitempty"`
}

// ApplyDeltaResponse is the /v1/graph/{name}/edges reply.
type ApplyDeltaResponse struct {
	Graph string `json:"graph"`
	// Epoch is the graph's new mutation epoch. Reads pinned to it (see
	// PartialGainRequest.Epoch) are guaranteed post-mutation answers.
	Epoch uint64 `json:"epoch"`
	// Nodes and Edges are the post-mutation graph dimensions; Touched the
	// number of nodes whose adjacency changed.
	Nodes   int `json:"nodes"`
	Edges   int `json:"edges"`
	Touched int `json:"touched"`
	// IndexesRepaired counts resident walk indexes carried across the
	// mutation by incremental repair; IndexesDropped those that rebuild on
	// next use; MemosDropped the memoized gain tables invalidated.
	IndexesRepaired int `json:"indexes_repaired"`
	IndexesDropped  int `json:"indexes_dropped"`
	MemosDropped    int `json:"memos_dropped"`
}

// PartialGainRequest identifies a GET /v1/partial/gain query: the integer
// gain sums of Nodes against Set over the replicate range [R0, R1) of the
// build identified by (Graph, Problem, L, Seed). Partial answers are the
// worker half of replicate-sharded serving — exact int64 sums a coordinator
// merges by addition and divides once, reproducing the unsharded float64
// values bit-for-bit.
type PartialGainRequest struct {
	Graph   string
	Problem string
	L       int
	Seed    *uint64
	// R0 and R1 delimit the replicate range [R0, R1) this worker owns.
	R0, R1 int
	// Epoch, when non-nil, pins the request to a graph mutation epoch: a
	// daemon whose graph is at any other epoch answers CodeStaleEpoch
	// instead of silently contributing sums from a different graph state.
	// Coordinators set it on every scatter.
	Epoch *uint64
	Set   []int
	Nodes []int
	// WantObjective additionally requests the integer objective accumulator
	// of Set over this range.
	WantObjective bool
}

// PartialGainResponse is the /v1/partial/gain reply: Sums[i] is the integer
// gain sum of Nodes[i] over the requested replicate range. ObjectiveSum is
// present only when the request asked for it. Degraded: see
// GainResponse.Degraded.
type PartialGainResponse struct {
	Graph        string  `json:"graph"`
	Problem      string  `json:"problem"`
	R0           int     `json:"r0"`
	R1           int     `json:"r1"`
	Set          []int   `json:"set"`
	Nodes        []int   `json:"nodes"`
	Sums         []int64 `json:"sums"`
	ObjectiveSum *int64  `json:"objective_sum,omitempty"`
	Replicates   int     `json:"replicates"`
	IndexCached  bool    `json:"index_cached"`
	Memo         string  `json:"memo"`
	Degraded     bool    `json:"degraded,omitempty"`
}

// PartialTopGainsRequest identifies a GET /v1/partial/topgains query: the B
// candidates with the largest integer gain sums over the replicate range
// [R0, R1), Set members excluded.
type PartialTopGainsRequest struct {
	Graph   string
	Problem string
	L       int
	Seed    *uint64
	R0, R1  int
	// Epoch: see PartialGainRequest.Epoch.
	Epoch *uint64
	Set   []int
	// B is the number of winners (0 = server default of 10). Unlike
	// /v1/topgains the cap is the graph's node count, not max-k: a
	// coordinator's threshold algorithm legitimately deepens past the public
	// top-B cap.
	B int
	// Workers shards the candidate sweep (0 = server default).
	Workers int
}

// PartialTopGainsResponse is the /v1/partial/topgains reply, sum descending
// with ties broken by ascending node id. Exhausted reports that every
// candidate outside Set was returned — a coordinator must not keep
// deepening. Degraded: see GainResponse.Degraded.
type PartialTopGainsResponse struct {
	Graph       string  `json:"graph"`
	Problem     string  `json:"problem"`
	R0          int     `json:"r0"`
	R1          int     `json:"r1"`
	Set         []int   `json:"set"`
	B           int     `json:"b"`
	Nodes       []int   `json:"nodes"`
	Sums        []int64 `json:"sums"`
	Exhausted   bool    `json:"exhausted"`
	IndexCached bool    `json:"index_cached"`
	Memo        string  `json:"memo"`
	Degraded    bool    `json:"degraded,omitempty"`
}

// Health is the /healthz reply.
type Health struct {
	Status  string  `json:"status"` // "ok" or "draining"
	UptimeS float64 `json:"uptime_s"`
	Graphs  int     `json:"graphs"`
}

// CacheStats mirrors the /stats "cache" block. SpillLoadErrors counts spill
// files that existed but failed to load (truncated or corrupt on disk) and
// were rebuilt from scratch instead.
type CacheStats struct {
	Hits            int64    `json:"hits"`
	Coalesced       int64    `json:"coalesced_builds"`
	Misses          int64    `json:"misses"`
	SpillLoads      int64    `json:"spill_loads"`
	SpillSaves      int64    `json:"spill_saves"`
	SpillLoadErrors int64    `json:"spill_load_errors"`
	SpillSkipped    int64    `json:"spill_skipped"`
	MmapLoads       int64    `json:"mmap_loads"`
	Evictions       int64    `json:"evictions"`
	BuildErrors     int64    `json:"build_errors"`
	Resident        int      `json:"resident"`
	ResidentBytes   int64    `json:"resident_bytes"`
	Keys            []string `json:"keys"`
}

// StorageStats mirrors the /stats "storage" block: the daemon's spill
// storage subsystem — the configured on-disk format, whether v8 spill loads
// serve store-backed off mmap'd pages, and the aggregate mapping/decode
// counters of resident store-backed indexes.
type StorageStats struct {
	SpillFormat    string `json:"spill_format"`
	Mmap           bool   `json:"mmap"`
	MappedIndexes  int    `json:"mapped_indexes"`
	MappedBytes    int64  `json:"mapped_bytes"`
	DecodeHits     int64  `json:"decode_hits"`
	DecodeMisses   int64  `json:"decode_misses"`
	DecodeErrors   int64  `json:"decode_errors"`
	PageInRestarts int64  `json:"page_in_restarts"`
}

// MemoStats mirrors the /stats "memo" block.
type MemoStats struct {
	Enabled        bool  `json:"enabled"`
	Hits           int64 `json:"hits"`
	Coalesced      int64 `json:"coalesced_populates"`
	Misses         int64 `json:"misses"`
	PrefixExtended int64 `json:"prefix_extended"`
	EmptyHits      int64 `json:"empty_hits"`
	TopGainsHits   int64 `json:"topgains_hits"`
	Evictions      int64 `json:"evictions"`
	Invalidated    int64 `json:"invalidated"`
	PopulateErrors int64 `json:"populate_errors"`
	Resident       int   `json:"resident"`
	ResidentBytes  int64 `json:"resident_bytes"`
}

// AdmissionStats mirrors the /stats "admission" block: the daemon's
// admission gate (slots, queue bound, traffic counters). Every 503
// "overloaded" reply corresponds to exactly one Shed tick.
type AdmissionStats struct {
	Enabled       bool  `json:"enabled"`
	MaxConcurrent int   `json:"max_concurrent"`
	MaxQueue      int   `json:"max_queue"`
	Admitted      int64 `json:"admitted"`
	Shed          int64 `json:"shed"`
	InFlight      int   `json:"in_flight"`
	QueueDepth    int   `json:"queue_depth"`
	QueueWaits    int64 `json:"queue_waits"`
	QueueWaitNS   int64 `json:"queue_wait_ns"`
}

// ShardConnStats mirrors one worker's entry in the /stats "shards" block.
type ShardConnStats struct {
	Addr     string `json:"addr"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	Retries  int64  `json:"retries"`
}

// ShardsStats mirrors the /stats "shards" block of a coordinator-mode
// daemon: per-shard scatter traffic, coordinator retries, and the
// scatter-gather merge latency histogram (the quantiles are bucket upper
// bounds in milliseconds).
type ShardsStats struct {
	Shards         int              `json:"shards"`
	Merges         int64            `json:"merges"`
	DegradedMerges int64            `json:"degraded_merges"`
	Retries        int64            `json:"retries"`
	MergeLatency   LatencySnapshot  `json:"merge_latency"`
	PerShard       []ShardConnStats `json:"per_shard"`
}

// LatencySnapshot mirrors a /stats latency histogram summary.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// AccuracyStats mirrors the /stats "accuracy" block: adaptive
// (epsilon-targeted) selection traffic. CIWidthHist buckets each completed
// run's achieved CIWidth/epsilon ratio into [0,0.25), [0.25,0.5), [0.5,0.75),
// [0.75,1], and >1 (the run hit the R cap before reaching epsilon).
type AccuracyStats struct {
	AdaptiveSelects int64   `json:"adaptive_selects"`
	EarlyStops      int64   `json:"early_stops"`
	ChunksBuilt     int64   `json:"chunks_built"`
	CIWidthHist     []int64 `json:"ci_width_hist"`
}

// Stats is the /stats reply (endpoint latency histograms are left to raw
// consumers; see the daemon's /stats documentation). Degraded counts read
// answers served from frozen memo tables while the walk index was
// unavailable. Shards is present only on coordinator-mode daemons; Accuracy
// only once an adaptive selection has run; Storage only when the daemon has
// a spill directory.
type Stats struct {
	UptimeS          float64        `json:"uptime_s"`
	Draining         bool           `json:"draining"`
	InFlight         int64          `json:"in_flight"`
	SelectsCoalesced int64          `json:"selects_coalesced"`
	Degraded         int64          `json:"degraded"`
	Admission        AdmissionStats `json:"admission"`
	Cache            CacheStats     `json:"cache"`
	Memo             MemoStats      `json:"memo"`
	Accuracy         *AccuracyStats `json:"accuracy,omitempty"`
	Shards           *ShardsStats   `json:"shards,omitempty"`
	Storage          *StorageStats  `json:"storage,omitempty"`
}
